// Figure 2: CPU time of mkdir under the four instrumentation methods,
// normalized to the uninstrumented run (the paper reports ~identical cost
// for dynamic / dynamic+static / static and +31% for all-branches; results
// for the other coreutils are similar, so all four are printed).
#include "bench/bench_util.h"

namespace retrace {
namespace {

void BenchTool(const char* tool) {
  auto pipeline = BuildWorkloadOrDie(tool);
  const Scenario benign = CoreutilsBenignScenario(tool);

  AnalysisConfig dyn_config;
  dyn_config.max_runs = 32;
  const AnalysisResult dyn = pipeline->RunDynamicAnalysis(benign.spec, dyn_config);
  const StaticAnalysisResult stat = pipeline->RunStaticAnalysis({});

  std::printf("\n--- %s ---\n", tool);
  std::printf("%-16s %-12s %-14s %-12s %-10s\n", "method", "native_cpu_%", "instr_execs",
              "branch_execs", "log_bytes");
  const int reps = 5 * BenchScale();
  for (const InstrumentMethod method :
       {InstrumentMethod::kDynamic, InstrumentMethod::kDynamicStatic, InstrumentMethod::kStatic,
        InstrumentMethod::kAllBranches}) {
    const InstrumentationPlan plan = pipeline->MakePlan(PlanInputs::ForMethod(method, &dyn, &stat));
    const auto sample = pipeline->MeasureOverhead(benign.spec, plan, benign.policy.get(), reps);
    std::printf("%-16s %-12.1f %-14llu %-12llu %-10llu\n", InstrumentMethodName(method),
                ModeledNativeCpuPercent(sample),
                static_cast<unsigned long long>(sample.instrumented_execs),
                static_cast<unsigned long long>(sample.branch_execs),
                static_cast<unsigned long long>(sample.log_bytes));
  }
}

int Main() {
  PrintHeader("Coreutils instrumentation overhead (CPU time, normalized to none=100%)",
              "Figure 2");
  std::printf("Paper (mkdir): dynamic ~= dynamic+static ~= static ~= 100%%; all branches "
              "~131%%.\n");
  for (const char* tool : {"mkdir", "mknod", "mkfifo", "paste"}) {
    BenchTool(tool);
  }
  return 0;
}

}  // namespace
}  // namespace retrace

int main() { return retrace::Main(); }
