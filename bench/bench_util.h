// Shared helpers for the experiment benches.
//
// Every bench regenerates one table or figure of the paper. Benches print
// the measured values next to the paper's published numbers so the
// qualitative comparison (who wins, by what factor) is visible in the raw
// output; EXPERIMENTS.md records the interpretation.
#ifndef RETRACE_BENCH_BENCH_UTIL_H_
#define RETRACE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/core/pipeline.h"
#include "src/support/env.h"
#include "src/workloads/scenarios.h"
#include "src/workloads/workloads.h"

namespace retrace {

inline std::unique_ptr<Pipeline> BuildWorkloadOrDie(const std::string& name) {
  const WorkloadSources sources = GetWorkload(name);
  auto r = Pipeline::FromSources(sources.app, sources.libs);
  if (!r.ok()) {
    std::fprintf(stderr, "failed to build %s: %s\n", name.c_str(),
                 r.error().ToString().c_str());
    std::exit(1);
  }
  return r.take();
}

// Environment-tunable scale factor so CI runs stay fast while full runs can
// approach the paper's sizes (RETRACE_BENCH_SCALE=10 etc.). Parsed
// strictly (src/support/env.h): garbage fails loudly instead of silently
// running an unscaled bench.
inline int BenchScale() {
  return static_cast<int>(EnvKnobI64("RETRACE_BENCH_SCALE", 1, 1, 1'000'000));
}

// Per-cell replay wall budget override in milliseconds. Unset uses the
// caller's default (30 s x scale for bench_parallel_replay, 20 s x scale
// for the table benches); CI's exp-5 smoke leg sets a short cap so the
// leg exercises the stats without burning minutes per inf cell.
inline i64 BenchCapMs(i64 default_ms) {
  return EnvKnobI64("RETRACE_BENCH_CAP_MS", default_ms, 1, 86'400'000);
}

// The paper's LC (1h) / HC (2h) dynamic-analysis budgets, scaled to
// deterministic run counts. The HC configuration additionally seeds the
// exploration with the developer test suite (paper §6 suggests exactly
// this to boost coverage past byte-ladder walls).
inline AnalysisConfig LowCoverageConfig() {
  AnalysisConfig config;
  config.max_runs = 4 * static_cast<u64>(BenchScale());
  config.seed = 17;
  return config;
}

inline AnalysisConfig HighCoverageConfig() {
  AnalysisConfig config;
  config.max_runs = 64 * static_cast<u64>(BenchScale());
  config.seed = 17;
  config.extra_seed_models = UserverExploreSeedModels();
  return config;
}

// Single-value replay knobs (workers, pick, solver cache, pruning,
// shards, transport, gossip cadence) are parsed by the engine's own
// ReplayConfig::FromEnv (src/replay/replay_engine.h) — one strict,
// documented parser shared by benches, CI legs, and tools, instead of
// per-bench getenv scatter. The thin wrappers below exist for benches
// that print or branch on one knob; ReplayShardsSweep stays bench-side
// because sweeping a *list* of shard counts is a bench concept.
inline u32 ReplayWorkers() { return ReplayConfig::FromEnv().num_workers; }

inline ReplayConfig::Pick ReplayPick() { return ReplayConfig::FromEnv().pick; }

inline const char* ReplayPickName() {
  switch (ReplayPick()) {
    case ReplayConfig::Pick::kFifo: return "fifo";
    case ReplayConfig::Pick::kLogBits: return "logbits";
    case ReplayConfig::Pick::kDirection: return "direction";
    case ReplayConfig::Pick::kPortfolio: return "portfolio";
    case ReplayConfig::Pick::kDfs: break;
  }
  return "dfs";
}

inline bool SolverCacheEnabled() { return ReplayConfig::FromEnv().solver_cache; }

inline bool ReplayPruneEnabled() { return ReplayConfig::FromEnv().prune_subsumed; }

// Corpus-seeding knob: RETRACE_REPLAY_CORPUS=1 hands the dynamic
// analysis' model corpus (AnalysisResult::corpus) to the replay engine
// as ReplayConfig::corpus_seeds. Only bench_parallel_replay wires it (it
// owns the dynamic-analysis result); off by default.
inline bool ReplayCorpusEnabled() {
  return EnvKnobBool("RETRACE_REPLAY_CORPUS", false);
}

// Corpus-mutation knob: RETRACE_REPLAY_CORPUS_MUTATE=N derives N
// deterministic mutants per harvested corpus model (point / nudge /
// splice operators, src/concolic/corpus_mutate.h) before seeding the
// replay engine. 0 (default) seeds the corpus unmutated. Only read by
// benches that also wire RETRACE_REPLAY_CORPUS.
inline u32 ReplayCorpusMutants() {
  return static_cast<u32>(EnvKnobI64("RETRACE_REPLAY_CORPUS_MUTATE", 0, 0, 64));
}

// Distributed-shard knob: RETRACE_REPLAY_SHARDS is a comma-separated
// list of shard counts ("1,2,4"). bench_parallel_replay sweeps the whole
// list; the table benches (through DefaultReplayConfig) use the first
// entry. Default {1}: everything stays in-process and historical numbers
// remain comparable.
inline std::vector<u32> ReplayShardsSweep() {
  const char* env = std::getenv("RETRACE_REPLAY_SHARDS");
  std::vector<u32> out;
  if (env != nullptr) {
    int value = 0;
    bool in_number = false;
    for (const char* c = env;; ++c) {
      if (*c >= '0' && *c <= '9') {
        value = value * 10 + (*c - '0');
        in_number = true;
      } else {
        if (in_number && value > 0) {
          out.push_back(static_cast<u32>(value));
        }
        value = 0;
        in_number = false;
        if (*c == '\0') {
          break;
        }
      }
    }
  }
  if (out.empty()) {
    out.push_back(1);
  }
  return out;
}

inline u32 ReplayShards() { return ReplayConfig::FromEnv().num_shards; }

inline ReplayTransport ReplayTransportMode() { return ReplayConfig::FromEnv().transport; }

inline const char* ReplayTransportName() {
  return ReplayTransportMode() == ReplayTransport::kTcp ? "tcp" : "fork";
}

inline int GossipIntervalMs() { return ReplayConfig::FromEnv().gossip_interval_ms; }

// The paper allots one hour of replay; scaled here.
inline ReplayConfig DefaultReplayConfig() {
  ReplayConfig config = ReplayConfig::FromEnv();
  // Budget and seed are bench policy, not env knobs: historical numbers
  // depend on them staying fixed.
  config.wall_ms = BenchCapMs(20'000 * static_cast<i64>(BenchScale()));
  config.max_runs = 50'000;
  config.seed = 31;
  return config;
}

// Models the *native* CPU overhead of branch logging. In native code one
// executed branch costs on the order of 1 ns of application work while the
// paper measures ~3 ns (17 instructions) per *logged* branch — logging a
// branch costs about kLogCostRatio times the branch itself. Interpreted
// execution amortizes the recorder to noise (every IR instruction costs
// ~100 ns), so benches report this model next to the measured time:
//   native% = 100 + 100 * kLogCostRatio * instrumented_execs / branch_execs
// Sanity check: with every branch logged this gives ~400%, matching the
// paper's all-branches uServer bar (~430%).
inline constexpr double kLogCostRatio = 3.0;

inline double ModeledNativeCpuPercent(const Pipeline::OverheadSample& sample) {
  if (sample.branch_execs == 0) {
    return 100.0;
  }
  return 100.0 + 100.0 * kLogCostRatio * static_cast<double>(sample.instrumented_execs) /
                     static_cast<double>(sample.branch_execs);
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title);
  std::printf("(reproduces %s)\n", paper_ref);
  std::printf("==============================================================\n");
}

// Formats a replay result like the paper's tables: seconds, or the infinity
// marker when the budget ran out.
inline std::string ReplayCell(const ReplayResult& result) {
  if (!result.reproduced) {
    return "inf";
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2fs", result.wall_seconds);
  return buffer;
}

}  // namespace retrace

#endif  // RETRACE_BENCH_BENCH_UTIL_H_
