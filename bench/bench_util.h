// Shared helpers for the experiment benches.
//
// Every bench regenerates one table or figure of the paper. Benches print
// the measured values next to the paper's published numbers so the
// qualitative comparison (who wins, by what factor) is visible in the raw
// output; EXPERIMENTS.md records the interpretation.
#ifndef RETRACE_BENCH_BENCH_UTIL_H_
#define RETRACE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/core/pipeline.h"
#include "src/support/env.h"
#include "src/workloads/scenarios.h"
#include "src/workloads/workloads.h"

namespace retrace {

inline std::unique_ptr<Pipeline> BuildWorkloadOrDie(const std::string& name) {
  const WorkloadSources sources = GetWorkload(name);
  auto r = Pipeline::FromSources(sources.app, sources.libs);
  if (!r.ok()) {
    std::fprintf(stderr, "failed to build %s: %s\n", name.c_str(),
                 r.error().ToString().c_str());
    std::exit(1);
  }
  return r.take();
}

// Environment-tunable scale factor so CI runs stay fast while full runs can
// approach the paper's sizes (RETRACE_BENCH_SCALE=10 etc.). Parsed
// strictly (src/support/env.h): garbage fails loudly instead of silently
// running an unscaled bench.
inline int BenchScale() {
  return static_cast<int>(EnvKnobI64("RETRACE_BENCH_SCALE", 1, 1, 1'000'000));
}

// Per-cell replay wall budget override in milliseconds. Unset uses the
// caller's default (30 s x scale for bench_parallel_replay, 20 s x scale
// for the table benches); CI's exp-5 smoke leg sets a short cap so the
// leg exercises the stats without burning minutes per inf cell.
inline i64 BenchCapMs(i64 default_ms) {
  return EnvKnobI64("RETRACE_BENCH_CAP_MS", default_ms, 1, 86'400'000);
}

// The paper's LC (1h) / HC (2h) dynamic-analysis budgets, scaled to
// deterministic run counts. The HC configuration additionally seeds the
// exploration with the developer test suite (paper §6 suggests exactly
// this to boost coverage past byte-ladder walls).
inline AnalysisConfig LowCoverageConfig() {
  AnalysisConfig config;
  config.max_runs = 4 * static_cast<u64>(BenchScale());
  config.seed = 17;
  return config;
}

inline AnalysisConfig HighCoverageConfig() {
  AnalysisConfig config;
  config.max_runs = 64 * static_cast<u64>(BenchScale());
  config.seed = 17;
  config.extra_seed_models = UserverExploreSeedModels();
  return config;
}

// Replay worker count for the table benches: RETRACE_REPLAY_WORKERS
// (default 1, the sequential engine, so historical numbers stay
// comparable; bench_parallel_replay sweeps counts explicitly). Strictly
// parsed: a negative or garbage count aborts instead of silently
// running sequentially.
inline u32 ReplayWorkers() {
  return static_cast<u32>(EnvKnobI64("RETRACE_REPLAY_WORKERS", 1, 1, 4096));
}

// Pending-pick heuristic for the table benches: RETRACE_REPLAY_PICK =
// dfs (default) | fifo | logbits | direction | portfolio. logbits was
// PR 2's exp-5 bet (deepest on-log prefix first); direction is PR 5's
// (most forced logged directions first). An unrecognized value aborts —
// a typo silently falling back to DFS produced untrustworthy sweeps.
inline ReplayConfig::Pick ReplayPick() {
  const char* env = std::getenv("RETRACE_REPLAY_PICK");
  if (env == nullptr) {
    return ReplayConfig::Pick::kDfs;
  }
  const std::string pick = env;
  if (pick == "dfs") {
    return ReplayConfig::Pick::kDfs;
  }
  if (pick == "fifo") {
    return ReplayConfig::Pick::kFifo;
  }
  if (pick == "logbits") {
    return ReplayConfig::Pick::kLogBits;
  }
  if (pick == "direction") {
    return ReplayConfig::Pick::kDirection;
  }
  if (pick == "portfolio") {
    return ReplayConfig::Pick::kPortfolio;
  }
  std::fprintf(stderr,
               "RETRACE_REPLAY_PICK: invalid value '%s' "
               "(expected dfs|fifo|logbits|direction|portfolio)\n",
               env);
  std::exit(2);
}

inline const char* ReplayPickName() {
  switch (ReplayPick()) {
    case ReplayConfig::Pick::kFifo: return "fifo";
    case ReplayConfig::Pick::kLogBits: return "logbits";
    case ReplayConfig::Pick::kDirection: return "direction";
    case ReplayConfig::Pick::kPortfolio: return "portfolio";
    case ReplayConfig::Pick::kDfs: break;
  }
  return "dfs";
}

// Incremental-solver layer knob for the table benches, mirroring
// RETRACE_REPLAY_WORKERS: RETRACE_SOLVER_CACHE=0/off/false disables the
// partition/slice-cache pipeline (the monolithic solver of the original
// engine); unset or 1/on/true leaves it on. Strictly parsed —
// historically `RETRACE_SOLVER_CACHE=true` atoi'd to 0 and *disabled*
// the cache the user asked for.
inline bool SolverCacheEnabled() {
  return EnvKnobBool("RETRACE_SOLVER_CACHE", true);
}

// Prefix-subsumption pruning knob (ReplayConfig::prune_subsumed):
// RETRACE_REPLAY_PRUNE=1 drops pendings whose constraint set was already
// executed or published, at Push time. Off by default so the historical
// run counts stay comparable.
inline bool ReplayPruneEnabled() {
  return EnvKnobBool("RETRACE_REPLAY_PRUNE", false);
}

// Corpus-seeding knob: RETRACE_REPLAY_CORPUS=1 hands the dynamic
// analysis' model corpus (AnalysisResult::corpus) to the replay engine
// as ReplayConfig::corpus_seeds. Only bench_parallel_replay wires it (it
// owns the dynamic-analysis result); off by default.
inline bool ReplayCorpusEnabled() {
  return EnvKnobBool("RETRACE_REPLAY_CORPUS", false);
}

// Distributed-shard knob: RETRACE_REPLAY_SHARDS is a comma-separated
// list of shard counts ("1,2,4"). bench_parallel_replay sweeps the whole
// list; the table benches (through DefaultReplayConfig) use the first
// entry. Default {1}: everything stays in-process and historical numbers
// remain comparable.
inline std::vector<u32> ReplayShardsSweep() {
  const char* env = std::getenv("RETRACE_REPLAY_SHARDS");
  std::vector<u32> out;
  if (env != nullptr) {
    int value = 0;
    bool in_number = false;
    for (const char* c = env;; ++c) {
      if (*c >= '0' && *c <= '9') {
        value = value * 10 + (*c - '0');
        in_number = true;
      } else {
        if (in_number && value > 0) {
          out.push_back(static_cast<u32>(value));
        }
        value = 0;
        in_number = false;
        if (*c == '\0') {
          break;
        }
      }
    }
  }
  if (out.empty()) {
    out.push_back(1);
  }
  return out;
}

inline u32 ReplayShards() { return ReplayShardsSweep().front(); }

// Distributed transport knob: RETRACE_REPLAY_TRANSPORT = fork (default,
// socketpairs on this host) | tcp (listener + loopback self-spawned
// shards — the same path a remote retrace_shardd takes). Only matters
// when the shard count is > 1.
inline ReplayTransport ReplayTransportMode() {
  const char* env = std::getenv("RETRACE_REPLAY_TRANSPORT");
  if (env != nullptr && std::string(env) == "tcp") {
    return ReplayTransport::kTcp;
  }
  return ReplayTransport::kFork;
}

inline const char* ReplayTransportName() {
  return ReplayTransportMode() == ReplayTransport::kTcp ? "tcp" : "fork";
}

// Shard gossip pump cadence: RETRACE_GOSSIP_INTERVAL_MS (default 20),
// within the engine's [1, 1000] clamp. Strictly parsed: a garbage
// cadence aborts instead of silently pumping at the default.
inline int GossipIntervalMs() {
  return static_cast<int>(EnvKnobI64("RETRACE_GOSSIP_INTERVAL_MS", 20, 1, 1000));
}

// The paper allots one hour of replay; scaled here.
inline ReplayConfig DefaultReplayConfig() {
  ReplayConfig config;
  config.wall_ms = BenchCapMs(20'000 * static_cast<i64>(BenchScale()));
  config.max_runs = 50'000;
  config.seed = 31;
  config.num_workers = ReplayWorkers();
  config.num_shards = ReplayShards();
  config.solver_cache = SolverCacheEnabled();
  config.pick = ReplayPick();
  config.prune_subsumed = ReplayPruneEnabled();
  config.transport = ReplayTransportMode();
  config.gossip_interval_ms = GossipIntervalMs();
  return config;
}

// Models the *native* CPU overhead of branch logging. In native code one
// executed branch costs on the order of 1 ns of application work while the
// paper measures ~3 ns (17 instructions) per *logged* branch — logging a
// branch costs about kLogCostRatio times the branch itself. Interpreted
// execution amortizes the recorder to noise (every IR instruction costs
// ~100 ns), so benches report this model next to the measured time:
//   native% = 100 + 100 * kLogCostRatio * instrumented_execs / branch_execs
// Sanity check: with every branch logged this gives ~400%, matching the
// paper's all-branches uServer bar (~430%).
inline constexpr double kLogCostRatio = 3.0;

inline double ModeledNativeCpuPercent(const Pipeline::OverheadSample& sample) {
  if (sample.branch_execs == 0) {
    return 100.0;
  }
  return 100.0 + 100.0 * kLogCostRatio * static_cast<double>(sample.instrumented_execs) /
                     static_cast<double>(sample.branch_execs);
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title);
  std::printf("(reproduces %s)\n", paper_ref);
  std::printf("==============================================================\n");
}

// Formats a replay result like the paper's tables: seconds, or the infinity
// marker when the budget ran out.
inline std::string ReplayCell(const ReplayResult& result) {
  if (!result.reproduced) {
    return "inf";
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2fs", result.wall_seconds);
  return buffer;
}

}  // namespace retrace

#endif  // RETRACE_BENCH_BENCH_UTIL_H_
