// Figure 5: CPU time of diff under the four instrumentation methods.
//
// diff is input-intensive: most branches depend on file contents, so even
// the dynamic plan instruments the hot comparison loops. Paper: dynamic
// and dynamic+static ~135%, static and all-branches higher. Dynamic
// analysis reaches only ~20% coverage (8840 branches total; dynamic marks
// 440, static 4292, dynamic+static 3432).
#include "bench/bench_util.h"

namespace retrace {
namespace {

int Main() {
  PrintHeader("diff instrumentation overhead (CPU time, normalized to none=100%)",
              "Figure 5");
  auto pipeline = BuildWorkloadOrDie("diff");
  const IrModule& module = pipeline->module();

  AnalysisConfig dyn_config = LowCoverageConfig();  // diff stays low-coverage (paper: 20%).
  dyn_config.max_runs = 10 * static_cast<u64>(BenchScale());
  const AnalysisResult dyn = pipeline->RunDynamicAnalysis(DiffExploreSpec(), dyn_config);
  const StaticAnalysisResult stat = pipeline->RunStaticAnalysis({});

  std::printf("Branch locations: %zu (paper: 8840)\n", module.NumBranchLocations());
  std::printf("Dynamic coverage: %.1f%% (paper: ~20%% after 1h)\n\n", 100.0 * dyn.Coverage());

  const Scenario benign = DiffBenignScenario();
  const int reps = 5 * BenchScale();
  std::printf("%-16s %-12s %-12s %-14s %-12s %s\n", "method", "native_cpu_%", "plan_size",
              "instr_execs", "log_bytes", "paper");
  const struct {
    InstrumentMethod method;
    const char* paper;
  } kRows[] = {
      {InstrumentMethod::kDynamic, "~135% (440 locations)"},
      {InstrumentMethod::kDynamicStatic, "~135% (3432 locations)"},
      {InstrumentMethod::kStatic, "higher (4292 locations)"},
      {InstrumentMethod::kAllBranches, "highest (8840 locations)"},
  };
  for (const auto& row : kRows) {
    const InstrumentationPlan plan = pipeline->MakePlan(PlanInputs::ForMethod(row.method, &dyn, &stat));
    const auto sample = pipeline->MeasureOverhead(benign.spec, plan, nullptr, reps);
    std::printf("%-16s %-12.1f %-12zu %-14llu %-12llu %s\n", InstrumentMethodName(row.method),
                ModeledNativeCpuPercent(sample), plan.NumInstrumented(),
                static_cast<unsigned long long>(sample.instrumented_execs),
                static_cast<unsigned long long>(sample.log_bytes), row.paper);
  }
  return 0;
}

}  // namespace
}  // namespace retrace

int main() { return retrace::Main(); }
