#include <gtest/gtest.h>

#include "src/solver/solver.h"

namespace retrace {
namespace {

TEST(ExprTest, ConstantFolding) {
  ExprArena arena;
  const ExprRef e = arena.MkBin(ExprOp::kAdd, arena.MkConst(2), arena.MkConst(3));
  ASSERT_TRUE(arena.IsConst(e));
  EXPECT_EQ(arena.ConstValue(e), 5);
  const ExprRef cmp = arena.MkBin(ExprOp::kLt, arena.MkConst(2), arena.MkConst(3));
  EXPECT_EQ(arena.ConstValue(cmp), 1);
}

TEST(ExprTest, HashConsing) {
  ExprArena arena;
  const ExprRef a = arena.MkBin(ExprOp::kAdd, arena.MkVar(0), arena.MkConst(1));
  const ExprRef b = arena.MkBin(ExprOp::kAdd, arena.MkVar(0), arena.MkConst(1));
  EXPECT_EQ(a, b);
}

TEST(ExprTest, Identities) {
  ExprArena arena;
  const ExprRef x = arena.MkVar(3);
  EXPECT_EQ(arena.MkBin(ExprOp::kAdd, x, arena.MkConst(0)), x);
  EXPECT_EQ(arena.MkBin(ExprOp::kMul, x, arena.MkConst(1)), x);
  EXPECT_TRUE(arena.IsConst(arena.MkBin(ExprOp::kMul, x, arena.MkConst(0))));
  EXPECT_TRUE(arena.IsConst(arena.MkBin(ExprOp::kSub, x, x)));
  EXPECT_EQ(arena.ConstValue(arena.MkBin(ExprOp::kEq, x, x)), 1);
}

TEST(ExprTest, EvalWithAssignment) {
  ExprArena arena;
  // (v0 * 10 + v1) == 42
  const ExprRef e = arena.MkBin(
      ExprOp::kEq,
      arena.MkBin(ExprOp::kAdd, arena.MkBin(ExprOp::kMul, arena.MkVar(0), arena.MkConst(10)),
                  arena.MkVar(1)),
      arena.MkConst(42));
  EXPECT_EQ(arena.Eval(e, {4, 2}), 1);
  EXPECT_EQ(arena.Eval(e, {4, 3}), 0);
}

TEST(ExprTest, DivRemTotality) {
  EXPECT_EQ(ExprArena::EvalBin(ExprOp::kDiv, 5, 0), 0);
  EXPECT_EQ(ExprArena::EvalBin(ExprOp::kRem, 5, 0), 0);
  EXPECT_EQ(ExprArena::EvalBin(ExprOp::kDiv, INT64_MIN, -1), INT64_MIN);
}

TEST(ExprTest, CollectVarsDeduplicates) {
  ExprArena arena;
  const ExprRef e = arena.MkBin(ExprOp::kAdd, arena.MkVar(2),
                                arena.MkBin(ExprOp::kMul, arena.MkVar(2), arena.MkVar(5)));
  std::vector<i32> vars;
  arena.CollectVars(e, &vars);
  ASSERT_EQ(vars.size(), 2u);
}

TEST(ExprTest, TruncCharFoldsAndCollapses) {
  ExprArena arena;
  EXPECT_EQ(arena.ConstValue(arena.MkUn(ExprOp::kTruncChar, arena.MkConst(300))), 44);
  const ExprRef t = arena.MkUn(ExprOp::kTruncChar, arena.MkVar(0));
  EXPECT_EQ(arena.MkUn(ExprOp::kTruncChar, t), t);
}

TEST(IntervalTest, NarrowEquality) {
  ExprArena arena;
  Interval iv{0, 255};
  const Constraint c{arena.MkBin(ExprOp::kEq, arena.MkVar(0), arena.MkConst(65)), true};
  EXPECT_TRUE(NarrowForConstraint(arena, c, 0, &iv));
  EXPECT_EQ(iv, (Interval{65, 65}));
}

TEST(IntervalTest, NarrowNegatedComparison) {
  ExprArena arena;
  Interval iv{0, 255};
  // NOT (v0 < 100)  =>  v0 >= 100.
  const Constraint c{arena.MkBin(ExprOp::kLt, arena.MkVar(0), arena.MkConst(100)), false};
  EXPECT_TRUE(NarrowForConstraint(arena, c, 0, &iv));
  EXPECT_EQ(iv, (Interval{100, 255}));
}

TEST(IntervalTest, NarrowMirrored) {
  ExprArena arena;
  Interval iv{-10, 10};
  // 3 < v0.
  const Constraint c{arena.MkBin(ExprOp::kLt, arena.MkConst(3), arena.MkVar(0)), true};
  EXPECT_TRUE(NarrowForConstraint(arena, c, 0, &iv));
  EXPECT_EQ(iv, (Interval{4, 10}));
}

TEST(IntervalTest, TruncSeenThrough) {
  ExprArena arena;
  Interval iv{0, 255};
  const ExprRef t = arena.MkUn(ExprOp::kTruncChar, arena.MkVar(0));
  const Constraint c{arena.MkBin(ExprOp::kGe, t, arena.MkConst('a')), true};
  EXPECT_TRUE(NarrowForConstraint(arena, c, 0, &iv));
  EXPECT_EQ(iv.lo, 'a');
}

class SolverFixture : public ::testing::Test {
 protected:
  SolveResult Solve(const std::vector<Constraint>& constraints,
                    const std::vector<Interval>& domains, const std::vector<i64>& seed) {
    Solver solver(arena_, SolverOptions{});
    return solver.Solve(constraints, domains, seed);
  }

  ExprArena arena_;
};

TEST_F(SolverFixture, AlreadySatisfiedBySeed) {
  const Constraint c{arena_.MkBin(ExprOp::kEq, arena_.MkVar(0), arena_.MkConst(7)), true};
  const SolveResult r = Solve({c}, {{0, 255}}, {7});
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_EQ(r.model[0], 7);
}

TEST_F(SolverFixture, RepairsSingleByte) {
  const Constraint c{arena_.MkBin(ExprOp::kEq, arena_.MkVar(0), arena_.MkConst('G')), true};
  const SolveResult r = Solve({c}, {{0, 255}}, {'x'});
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_EQ(r.model[0], 'G');
}

TEST_F(SolverFixture, EqualityChainAcrossVars) {
  // v0 == v1, v1 == v2, v2 == 'z'.
  std::vector<Constraint> cs = {
      {arena_.MkBin(ExprOp::kEq, arena_.MkVar(0), arena_.MkVar(1)), true},
      {arena_.MkBin(ExprOp::kEq, arena_.MkVar(1), arena_.MkVar(2)), true},
      {arena_.MkBin(ExprOp::kEq, arena_.MkVar(2), arena_.MkConst('z')), true},
  };
  const SolveResult r = Solve(cs, {{0, 255}, {0, 255}, {0, 255}}, {'a', 'b', 'c'});
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_EQ(r.model[0], 'z');
  EXPECT_EQ(r.model[1], 'z');
  EXPECT_EQ(r.model[2], 'z');
}

TEST_F(SolverFixture, ArithmeticConstraint) {
  // v0 * 10 + v1 == 42 over digits.
  const ExprRef sum =
      arena_.MkBin(ExprOp::kAdd, arena_.MkBin(ExprOp::kMul, arena_.MkVar(0), arena_.MkConst(10)),
                   arena_.MkVar(1));
  const Constraint c{arena_.MkBin(ExprOp::kEq, sum, arena_.MkConst(42)), true};
  const SolveResult r = Solve({c}, {{0, 9}, {0, 9}}, {0, 0});
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_EQ(r.model[0] * 10 + r.model[1], 42);
}

TEST_F(SolverFixture, DetectsUnsat) {
  std::vector<Constraint> cs = {
      {arena_.MkBin(ExprOp::kEq, arena_.MkVar(0), arena_.MkConst(5)), true},
      {arena_.MkBin(ExprOp::kEq, arena_.MkVar(0), arena_.MkConst(6)), true},
  };
  const SolveResult r = Solve(cs, {{0, 255}}, {5});
  EXPECT_EQ(r.status, SolveStatus::kUnsat);
}

TEST_F(SolverFixture, NegatedConstraintFlips) {
  // want_true = false on (v0 == 5): any byte but 5.
  const Constraint c{arena_.MkBin(ExprOp::kEq, arena_.MkVar(0), arena_.MkConst(5)), false};
  const SolveResult r = Solve({c}, {{0, 255}}, {5});
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_NE(r.model[0], 5);
}

TEST_F(SolverFixture, PreservesSatisfiedPrefix) {
  // A concolic-style set: many satisfied constraints plus one flipped tail.
  std::vector<Constraint> cs;
  std::vector<Interval> domains;
  std::vector<i64> seed;
  const std::string word = "GET /index";
  for (size_t i = 0; i < word.size(); ++i) {
    cs.push_back({arena_.MkBin(ExprOp::kEq, arena_.MkVar(static_cast<i32>(i)),
                               arena_.MkConst(word[i])),
                  true});
    domains.push_back({0, 255});
    seed.push_back(word[i]);
  }
  // Tail: byte 10 must become '?' (seed has 'x').
  cs.push_back({arena_.MkBin(ExprOp::kEq, arena_.MkVar(10), arena_.MkConst('?')), true});
  domains.push_back({0, 255});
  seed.push_back('x');
  const SolveResult r = Solve(cs, domains, seed);
  ASSERT_EQ(r.status, SolveStatus::kSat);
  for (size_t i = 0; i < word.size(); ++i) {
    EXPECT_EQ(r.model[i], word[i]);
  }
  EXPECT_EQ(r.model[10], '?');
}

TEST_F(SolverFixture, SyscallRangeVar) {
  // read() return in [-1, 64]; constraint: ret > 0 and ret != seed.
  std::vector<Constraint> cs = {
      {arena_.MkBin(ExprOp::kGt, arena_.MkVar(0), arena_.MkConst(0)), true},
      {arena_.MkBin(ExprOp::kEq, arena_.MkVar(0), arena_.MkConst(64)), false},
  };
  const SolveResult r = Solve(cs, {{-1, 64}}, {64});
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_GT(r.model[0], 0);
  EXPECT_NE(r.model[0], 64);
}

TEST_F(SolverFixture, TruncCharConstraint) {
  const ExprRef t = arena_.MkUn(ExprOp::kTruncChar, arena_.MkVar(0));
  const Constraint c{arena_.MkBin(ExprOp::kEq, t, arena_.MkConst('-')), true};
  const SolveResult r = Solve({c}, {{0, 255}}, {'a'});
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_EQ(r.model[0], '-');
}

TEST_F(SolverFixture, Satisfies) {
  Solver solver(arena_, SolverOptions{});
  const Constraint c{arena_.MkBin(ExprOp::kLt, arena_.MkVar(0), arena_.MkConst(10)), true};
  EXPECT_TRUE(solver.Satisfies({c}, {5}));
  EXPECT_FALSE(solver.Satisfies({c}, {15}));
}

}  // namespace
}  // namespace retrace
