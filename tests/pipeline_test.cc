#include <gtest/gtest.h>

#include "src/core/pipeline.h"
#include "src/workloads/scenarios.h"
#include "src/workloads/workloads.h"

namespace retrace {
namespace {

std::unique_ptr<Pipeline> BuildWorkload(const std::string& name) {
  const WorkloadSources sources = GetWorkload(name);
  auto r = Pipeline::FromSources(sources.app, sources.libs);
  EXPECT_TRUE(r.ok()) << name << ": " << (r.ok() ? "" : r.error().ToString());
  return r.take();
}

TEST(WorkloadTest, AllWorkloadsCompile) {
  for (const char* name :
       {"listing1", "loop_micro", "mkdir", "mknod", "mkfifo", "paste", "diff", "userver"}) {
    auto pipeline = BuildWorkload(name);
    ASSERT_NE(pipeline, nullptr) << name;
    EXPECT_GT(pipeline->module().NumBranchLocations(), 0u) << name;
    EXPECT_GT(pipeline->module().NumAppBranchLocations(), 0u) << name;
  }
}

TEST(WorkloadTest, BenignCoreutilsRunsExitCleanly) {
  for (const char* tool : {"mkdir", "mknod", "mkfifo", "paste"}) {
    auto pipeline = BuildWorkload(tool);
    const Scenario scenario = CoreutilsBenignScenario(tool);
    InstrumentationPlan none;
    none.branches = DenseBitset(pipeline->module().branches.size());
    const auto user = pipeline->RecordUserRun(scenario.spec, none, {}).take();
    EXPECT_FALSE(user.result.Crashed()) << tool << ": " << user.result.crash.ToString();
    EXPECT_EQ(user.result.exit_code, 0) << tool << " stdout: " << user.stdout_text;
  }
}

TEST(WorkloadTest, BuggyCoreutilsCrashWhereExpected) {
  const struct {
    const char* tool;
    CrashSite::Kind kind;
  } kCases[] = {
      {"mkdir", CrashSite::Kind::kOutOfBounds},
      {"mknod", CrashSite::Kind::kOutOfBounds},
      {"mkfifo", CrashSite::Kind::kOutOfBounds},
      {"paste", CrashSite::Kind::kOutOfBounds},
  };
  for (const auto& test_case : kCases) {
    auto pipeline = BuildWorkload(test_case.tool);
    const Scenario scenario = CoreutilsBugScenario(test_case.tool);
    InstrumentationPlan none;
    none.branches = DenseBitset(pipeline->module().branches.size());
    const auto user = pipeline->RecordUserRun(scenario.spec, none, {}).take();
    ASSERT_TRUE(user.result.Crashed()) << test_case.tool;
    EXPECT_EQ(user.result.crash.kind, test_case.kind) << test_case.tool;
  }
}

TEST(WorkloadTest, PasteBenignOutput) {
  auto pipeline = BuildWorkload("paste");
  InputSpec spec;
  spec.argv = {"paste", "-d", ",", "aa", "bb", "cc"};
  spec.world.listen_fd = -1;
  InstrumentationPlan none;
  none.branches = DenseBitset(pipeline->module().branches.size());
  const auto user = pipeline->RecordUserRun(spec, none, {}).take();
  EXPECT_EQ(user.stdout_text, "aa,bb,cc\n");
}

TEST(WorkloadTest, DiffBenignFindsHunks) {
  auto pipeline = BuildWorkload("diff");
  const Scenario scenario = DiffBenignScenario();
  InstrumentationPlan none;
  none.branches = DenseBitset(pipeline->module().branches.size());
  const auto user = pipeline->RecordUserRun(scenario.spec, none, {}).take();
  ASSERT_FALSE(user.result.Crashed()) << user.result.crash.ToString();
  EXPECT_NE(user.stdout_text.find("hunks: 3"), std::string::npos) << user.stdout_text;
  EXPECT_NE(user.stdout_text.find("< two\n"), std::string::npos);
  EXPECT_NE(user.stdout_text.find("> two2\n"), std::string::npos);
}

TEST(WorkloadTest, DiffExperimentsCrashInHunkTable) {
  for (int experiment = 1; experiment <= 2; ++experiment) {
    auto pipeline = BuildWorkload("diff");
    const Scenario scenario = DiffScenario(experiment);
    InstrumentationPlan none;
    none.branches = DenseBitset(pipeline->module().branches.size());
    const auto user = pipeline->RecordUserRun(scenario.spec, none, {}).take();
    ASSERT_TRUE(user.result.Crashed()) << "exp" << experiment;
    EXPECT_EQ(user.result.crash.kind, CrashSite::Kind::kOutOfBounds);
  }
}

TEST(WorkloadTest, UserverServesRequests) {
  auto pipeline = BuildWorkload("userver");
  const InputSpec spec = UserverLoadSpec(6);
  InstrumentationPlan none;
  none.branches = DenseBitset(pipeline->module().branches.size());
  const auto user = pipeline->RecordUserRun(spec, none, {}).take();
  EXPECT_FALSE(user.result.Crashed()) << user.result.crash.ToString();
  EXPECT_EQ(user.result.exit_code, 0);
}

TEST(WorkloadTest, UserverRespondsToEachMethod) {
  auto pipeline = BuildWorkload("userver");
  for (int experiment = 1; experiment <= 5; ++experiment) {
    const Scenario scenario = UserverScenario(experiment);
    InstrumentationPlan none;
    none.branches = DenseBitset(pipeline->module().branches.size());
    Pipeline::UserRunOptions options;
    options.policy = scenario.policy.get();
    const auto user = pipeline->RecordUserRun(scenario.spec, none, options).take();
    // The signal arrives after the requests: the run must end at crash(7).
    ASSERT_TRUE(user.result.Crashed()) << scenario.name;
    EXPECT_EQ(user.result.crash.kind, CrashSite::Kind::kExplicit) << scenario.name;
    EXPECT_EQ(user.result.crash.code, 7) << scenario.name;
  }
}

TEST(PipelineTest, CoreutilsEndToEndAllMethods) {
  // The paper's Table 1: all four instrumented configurations reproduce
  // the coreutils bugs quickly.
  for (const char* tool : {"mkdir", "mknod", "mkfifo", "paste"}) {
    auto pipeline = BuildWorkload(tool);
    const Scenario benign = CoreutilsBenignScenario(tool);
    AnalysisConfig dyn_config;
    dyn_config.max_runs = 24;
    const AnalysisResult dyn = pipeline->RunDynamicAnalysis(benign.spec, dyn_config);
    const StaticAnalysisResult stat = pipeline->RunStaticAnalysis({});

    const Scenario bug = CoreutilsBugScenario(tool);
    for (const InstrumentMethod method :
         {InstrumentMethod::kDynamic, InstrumentMethod::kStatic,
          InstrumentMethod::kDynamicStatic, InstrumentMethod::kAllBranches}) {
      const InstrumentationPlan plan = pipeline->MakePlan(PlanInputs::ForMethod(method, &dyn, &stat));
      const auto user = pipeline->RecordUserRun(bug.spec, plan, {}).take();
      ASSERT_TRUE(user.result.Crashed()) << tool << "/" << InstrumentMethodName(method);
      ReplayConfig replay_config;
      replay_config.max_runs = 3000;
      const ReplayResult replay = pipeline->Reproduce(user.report, plan, replay_config).take();
      EXPECT_TRUE(replay.reproduced) << tool << "/" << InstrumentMethodName(method)
                                     << " runs=" << replay.stats.runs;
      if (replay.reproduced) {
        EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));
      }
    }
  }
}

TEST(PipelineTest, UserverExperimentOneCombined) {
  auto pipeline = BuildWorkload("userver");
  AnalysisConfig dyn_config;
  dyn_config.max_runs = 16;
  const AnalysisResult dyn = pipeline->RunDynamicAnalysis(UserverExploreSpec(), dyn_config);
  StaticAnalysisOptions stat_options;
  stat_options.analyze_library = false;  // The paper's uServer setup.
  const StaticAnalysisResult stat = pipeline->RunStaticAnalysis(stat_options);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::DynamicStatic(dyn, stat));

  const Scenario scenario = UserverScenario(1);
  Pipeline::UserRunOptions options;
  options.policy = scenario.policy.get();
  const auto user = pipeline->RecordUserRun(scenario.spec, plan, options).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig replay_config;
  replay_config.max_runs = 4000;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, replay_config).take();
  EXPECT_TRUE(replay.reproduced) << "runs=" << replay.stats.runs;
}

TEST(PipelineTest, OverheadOrderingOnCoreutils) {
  // Figure 2's qualitative claim: all-branches is the most expensive
  // configuration; the analysis-guided plans instrument fewer executions.
  auto pipeline = BuildWorkload("mkdir");
  const Scenario benign = CoreutilsBenignScenario("mkdir");
  AnalysisConfig dyn_config;
  dyn_config.max_runs = 16;
  const AnalysisResult dyn = pipeline->RunDynamicAnalysis(benign.spec, dyn_config);
  const StaticAnalysisResult stat = pipeline->RunStaticAnalysis({});

  const auto all = pipeline->MakePlan(PlanInputs::AllBranches());
  const auto dyn_plan = pipeline->MakePlan(PlanInputs::Dynamic(dyn));
  const auto combo = pipeline->MakePlan(PlanInputs::DynamicStatic(dyn, stat));

  const auto all_sample = pipeline->MeasureOverhead(benign.spec, all, nullptr, 1);
  const auto dyn_sample = pipeline->MeasureOverhead(benign.spec, dyn_plan, nullptr, 1);
  const auto combo_sample = pipeline->MeasureOverhead(benign.spec, combo, nullptr, 1);

  EXPECT_GT(all_sample.instrumented_execs, dyn_sample.instrumented_execs);
  EXPECT_GE(all_sample.instrumented_execs, combo_sample.instrumented_execs);
  EXPECT_GT(all_sample.log_bytes, 0u);
}

TEST(PipelineTest, ReportStripsPrivateData) {
  auto pipeline = BuildWorkload("mkdir");
  const Scenario bug = CoreutilsBugScenario("mkdir");
  const auto plan = pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(bug.spec, plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());
  // Shape preserved, contents gone.
  ASSERT_EQ(user.report.shape.argv.size(), bug.spec.argv.size());
  for (size_t i = 1; i < bug.spec.argv.size(); ++i) {
    EXPECT_EQ(user.report.shape.argv[i].size(), bug.spec.argv[i].size());
    EXPECT_NE(user.report.shape.argv[i], bug.spec.argv[i]);
  }
}

TEST(PipelineTest, SymbolicSplitStatsPopulated) {
  auto pipeline = BuildWorkload("mkdir");
  const Scenario bug = CoreutilsBugScenario("mkdir");
  const auto plan = pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(bug.spec, plan, {}).take();
  // Under all-branches every symbolic execution is logged.
  EXPECT_GT(user.report.stats.symbolic_execs_logged, 0u);
  EXPECT_EQ(user.report.stats.symbolic_execs_unlogged, 0u);
  EXPECT_EQ(user.report.stats.symbolic_locations_unlogged, 0u);
}

}  // namespace
}  // namespace retrace
