// Wire v6 tests: the execution-engine byte riding the kJob config codec.
// The coordinator resolves kDefault (RETRACE_EXEC_ENGINE) before encoding
// so every shard runs the same engine regardless of its own environment;
// a listening retrace_shardd must reject out-of-range engine values.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "src/dist/wire.h"

namespace retrace {
namespace {

WireJob MinimalJob() {
  WireJob job;
  job.config.max_runs = 10;
  job.config.program.app = "int main() { return 0; }";
  return job;
}

std::vector<u8> EncodeJobPayload(const WireJob& job) {
  WireWriter w;
  EncodeJob(job, &w);
  return w.buf();
}

TEST(DistWireV6Test, EngineKindRoundTripsThroughJob) {
  for (const ExecEngineKind kind : {ExecEngineKind::kTree, ExecEngineKind::kBytecode}) {
    WireJob job = MinimalJob();
    job.config.engine = kind;
    const std::vector<u8> payload = EncodeJobPayload(job);
    WireReader r(payload.data(), payload.size());
    WireJob decoded;
    ASSERT_TRUE(DecodeJob(&r, &decoded));
    EXPECT_EQ(decoded.config.engine, kind);
    // Byte-exact: re-encoding the decoded job reproduces the stream.
    EXPECT_EQ(EncodeJobPayload(decoded), payload);
  }
}

TEST(DistWireV6Test, DefaultEngineResolvedBeforeEncode) {
  // A kDefault config must never reach the wire: the coordinator's
  // environment decides, and with the knob unset that means kTree.
  unsetenv("RETRACE_EXEC_ENGINE");
  WireJob job = MinimalJob();
  job.config.engine = ExecEngineKind::kDefault;
  const std::vector<u8> payload = EncodeJobPayload(job);
  WireReader r(payload.data(), payload.size());
  WireJob decoded;
  ASSERT_TRUE(DecodeJob(&r, &decoded));
  EXPECT_EQ(decoded.config.engine, ExecEngineKind::kTree);
}

TEST(DistWireV6Test, HostileEngineByteRejected) {
  WireJob job = MinimalJob();
  job.config.engine = ExecEngineKind::kBytecode;
  std::vector<u8> payload = EncodeJobPayload(job);
  // The engine byte is the last field of the config codec. With no corpus
  // seeds the fields before it are fixed-size: 7xU64 + 2xU8 + U32 + U8 +
  // U64 + U32 + 3xI32 + U8 + U32(corpus count) = 92 bytes.
  constexpr size_t kEngineOffset = 92;
  ASSERT_EQ(payload[kEngineOffset], static_cast<u8>(ExecEngineKind::kBytecode));
  payload[kEngineOffset] = 7;  // No such engine.
  WireReader r(payload.data(), payload.size());
  WireJob decoded;
  EXPECT_FALSE(DecodeJob(&r, &decoded));
}

TEST(DistWireV6Test, EngineByteTruncationRejected) {
  // A config stream cut exactly before the engine byte must fail to
  // decode, not silently default.
  WireJob job = MinimalJob();
  job.config.engine = ExecEngineKind::kTree;
  const std::vector<u8> payload = EncodeJobPayload(job);
  constexpr size_t kEngineOffset = 92;
  WireReader r(payload.data(), kEngineOffset);
  WireJob decoded;
  EXPECT_FALSE(DecodeJob(&r, &decoded));
}

}  // namespace
}  // namespace retrace
