// Chaos suite for the distributed replay scheduler's failure-handling
// layer (src/dist/fault.h + the coordinator's recovery machinery):
//
//   - FaultSpec grammar: every action/trigger form parses, garbage is
//     refused with a reason.
//   - FaultInjectingChannel semantics, frame by frame over a socketpair:
//     drop, dup, delay, corrupt, close, hang.
//   - End-to-end under seeded fault schedules (fork and TCP transports):
//     a shard killed at its first frame mid-search must not cost the
//     reproduction — its seeded partition re-injects into the survivor
//     (ledger recovery), and the stats say so honestly; a hung shard is
//     only detectable by the heartbeat deadline; whole-fleet death falls
//     back to an in-process search; a corrupt-frame storm may cost the
//     answer but never the process.
//   - Transport::Reap() must stay bounded when a child is wedged
//     (WNOHANG grace, then SIGKILL escalation).
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "src/core/pipeline.h"
#include "src/dist/fault.h"
#include "src/dist/transport.h"
#include "src/dist/wire.h"
#include "tests/testutil.h"

namespace retrace {
namespace {

i64 NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Wide-enough search space that the scout actually ships pending sets
// to both shards (same scenario as dist_replay_test.cc).
constexpr const char* kDeepGuardedCrash = R"(
int main(int argc, char **argv) {
  if (argc < 3) { return 1; }
  int hits = 0;
  if (argv[1][0] == 'a') { hits = hits + 1; }
  if (argv[1][1] == 'b') { hits = hits + 1; }
  if (argv[1][2] == 'c') { hits = hits + 1; }
  if (argv[2][0] > 'm') { hits = hits + 1; }
  if (hits == 4) { crash(7); }
  return 0;
}
)";

std::unique_ptr<Pipeline> MustBuild(std::string_view app) {
  auto r = Pipeline::FromSources(app, {});
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().ToString());
  return r.take();
}

InputSpec DeepGuardedCrashInput() {
  InputSpec spec;
  spec.argv = {"prog", "abc", "z"};
  spec.world.listen_fd = -1;
  return spec;
}

// ----- FaultSpec grammar. -----

TEST(FaultSpecTest, ParsesEveryActionAndTriggerForm) {
  FaultSpec spec;
  std::string err;
  ASSERT_TRUE(ParseFaultSpec(
      "shard1:close@frame20, shard2:hang@frame5, all:corrupt%1, shard0:drop@frame1, "
      "all:delay%100, shard63:dup@frame999",
      &spec, &err))
      << err;
  ASSERT_EQ(spec.clauses.size(), 6u);
  EXPECT_EQ(spec.clauses[0].shard, 1);
  EXPECT_EQ(spec.clauses[0].action.kind, FaultAction::Kind::kClose);
  EXPECT_EQ(spec.clauses[0].action.at_frame, 20u);
  EXPECT_EQ(spec.clauses[0].action.percent, 0u);
  EXPECT_EQ(spec.clauses[1].action.kind, FaultAction::Kind::kHang);
  EXPECT_EQ(spec.clauses[2].shard, kFaultAllShards);
  EXPECT_EQ(spec.clauses[2].action.kind, FaultAction::Kind::kCorrupt);
  EXPECT_EQ(spec.clauses[2].action.percent, 1u);
  EXPECT_EQ(spec.clauses[3].action.kind, FaultAction::Kind::kDrop);
  EXPECT_EQ(spec.clauses[4].action.kind, FaultAction::Kind::kDelay);
  EXPECT_EQ(spec.clauses[4].action.percent, 100u);
  EXPECT_EQ(spec.clauses[5].shard, 63);
  EXPECT_EQ(spec.clauses[5].action.at_frame, 999u);

  // ForShard: 'all' clauses apply everywhere, shardN only to N.
  EXPECT_EQ(spec.ForShard(1).size(), 3u);   // close@20, corrupt%1, delay%100.
  EXPECT_EQ(spec.ForShard(7).size(), 2u);   // The two 'all' clauses.
  EXPECT_EQ(spec.ForShard(63).size(), 3u);

  // The empty spec is the explicit no-faults schedule.
  ASSERT_TRUE(ParseFaultSpec("", &spec, &err));
  EXPECT_TRUE(spec.empty());
}

TEST(FaultSpecTest, RefusesGarbage) {
  const char* bad[] = {
      "shard1",                    // No action.
      "shard1:close",              // No trigger.
      "shard1:explode@frame1",     // Unknown action.
      "worker1:close@frame1",      // Unknown target.
      "shard:close@frame1",        // Target without an id.
      "shard1:close@frame0",       // Frames are 1-based.
      "shard1:close@frames1",      // Misspelled trigger.
      "shard1:corrupt%0",          // Percent below range.
      "shard1:corrupt%101",        // Percent above range.
      "shard1:close@frame1,",      // Trailing empty clause.
      "shard1:close@frame1 x",     // Trailing garbage.
      ",",                         // Only separators.
      "all:close@frame99999999999999999999",  // Overflow.
  };
  for (const char* text : bad) {
    FaultSpec spec;
    std::string err;
    EXPECT_FALSE(ParseFaultSpec(text, &spec, &err)) << text;
    EXPECT_FALSE(err.empty()) << text;
  }
}

// ----- FaultInjectingChannel semantics, frame by frame. -----

// Harness: a socketpair with the near end wrapped in the decorator and
// the far end a plain channel the test writes through.
struct ChannelPair {
  std::unique_ptr<FaultInjectingChannel> near;
  std::unique_ptr<WireChannel> far;
};

ChannelPair MakePair(std::vector<FaultAction> actions) {
  int fds[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ChannelPair pair;
  pair.near = std::make_unique<FaultInjectingChannel>(std::make_unique<WireChannel>(fds[0]),
                                                      std::move(actions), /*seed=*/7);
  pair.far = std::make_unique<WireChannel>(fds[1]);
  return pair;
}

// A payload whose identity survives the trip: one heartbeat seq.
std::vector<u8> BeatPayload(u64 seq) {
  WireWriter w;
  EncodeHeartbeat(WireHeartbeat{seq}, &w);
  return w.buf();
}

u64 BeatSeq(const WireFrame& frame) {
  WireReader r(frame.payload.data(), frame.payload.size());
  WireHeartbeat beat;
  EXPECT_TRUE(DecodeHeartbeat(&r, &beat));
  return beat.seq;
}

TEST(FaultChannelTest, DropDiscardsExactlyTheTriggeringFrame) {
  ChannelPair pair = MakePair({FaultAction{FaultAction::Kind::kDrop, 2, 0}});
  for (u64 seq = 1; seq <= 3; ++seq) {
    ASSERT_TRUE(pair.far->Send(WireMsg::kHeartbeat, BeatPayload(seq)));
  }
  std::vector<WireFrame> got;
  ASSERT_EQ(pair.near->Poll(200, &got), WireChannel::RecvStatus::kOk);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(BeatSeq(got[0]), 1u);
  EXPECT_EQ(BeatSeq(got[1]), 3u);
}

TEST(FaultChannelTest, DupDeliversTheTriggeringFrameTwice) {
  ChannelPair pair = MakePair({FaultAction{FaultAction::Kind::kDup, 2, 0}});
  for (u64 seq = 1; seq <= 3; ++seq) {
    ASSERT_TRUE(pair.far->Send(WireMsg::kHeartbeat, BeatPayload(seq)));
  }
  std::vector<WireFrame> got;
  ASSERT_EQ(pair.near->Poll(200, &got), WireChannel::RecvStatus::kOk);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(BeatSeq(got[0]), 1u);
  EXPECT_EQ(BeatSeq(got[1]), 2u);
  EXPECT_EQ(BeatSeq(got[2]), 2u);
  EXPECT_EQ(BeatSeq(got[3]), 3u);
}

TEST(FaultChannelTest, DelayHoldsTheFrameUntilTheNextPoll) {
  ChannelPair pair = MakePair({FaultAction{FaultAction::Kind::kDelay, 1, 0}});
  ASSERT_TRUE(pair.far->Send(WireMsg::kHeartbeat, BeatPayload(1)));
  ASSERT_TRUE(pair.far->Send(WireMsg::kHeartbeat, BeatPayload(2)));
  std::vector<WireFrame> got;
  ASSERT_EQ(pair.near->Poll(200, &got), WireChannel::RecvStatus::kOk);
  ASSERT_EQ(got.size(), 1u);  // Frame 1 held; frame 2 passed.
  EXPECT_EQ(BeatSeq(got[0]), 2u);
  got.clear();
  ASSERT_EQ(pair.near->Poll(50, &got), WireChannel::RecvStatus::kOk);
  ASSERT_EQ(got.size(), 1u);  // The held frame re-enters first.
  EXPECT_EQ(BeatSeq(got[0]), 1u);
}

TEST(FaultChannelTest, CorruptFlipsOnePayloadByteSoDecodersRefuse) {
  ChannelPair pair = MakePair({FaultAction{FaultAction::Kind::kCorrupt, 1, 0}});
  WireVerdicts verdicts;
  verdicts.unsat.push_back({0x1234u, 0x5678u});
  WireWriter w;
  EncodeVerdicts(verdicts, &w);
  const std::vector<u8> original = w.buf();
  ASSERT_TRUE(pair.far->Send(WireMsg::kVerdicts, original));
  std::vector<WireFrame> got;
  ASSERT_EQ(pair.near->Poll(200, &got), WireChannel::RecvStatus::kOk);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].payload.size(), original.size());
  EXPECT_NE(got[0].payload, original);  // Exactly the post-digest flip.
}

TEST(FaultChannelTest, CloseDeliversThePrefixThenReportsClosed) {
  ChannelPair pair = MakePair({FaultAction{FaultAction::Kind::kClose, 2, 0}});
  for (u64 seq = 1; seq <= 3; ++seq) {
    ASSERT_TRUE(pair.far->Send(WireMsg::kHeartbeat, BeatPayload(seq)));
  }
  std::vector<WireFrame> got;
  ASSERT_EQ(pair.near->Poll(200, &got), WireChannel::RecvStatus::kClosed);
  ASSERT_EQ(got.size(), 1u);  // The clean prefix before the trigger.
  EXPECT_EQ(BeatSeq(got[0]), 1u);
  // Sticky, and sends refuse too.
  got.clear();
  EXPECT_EQ(pair.near->Poll(0, &got), WireChannel::RecvStatus::kClosed);
  EXPECT_FALSE(pair.near->Send(WireMsg::kStop, {}));
  EXPECT_EQ(pair.near->fd(), -1);
  // The far end sees a real EOF — the shard side of a crashed peer.
  std::vector<WireFrame> far_got;
  EXPECT_EQ(pair.far->Poll(200, &far_got), WireChannel::RecvStatus::kClosed);
}

TEST(FaultChannelTest, HangGoesMuteBothWaysButPretendsHealth) {
  ChannelPair pair = MakePair({FaultAction{FaultAction::Kind::kHang, 1, 0}});
  ASSERT_TRUE(pair.far->Send(WireMsg::kHeartbeat, BeatPayload(1)));
  ASSERT_TRUE(pair.far->Send(WireMsg::kHeartbeat, BeatPayload(2)));
  std::vector<WireFrame> got;
  // Everything from the trigger on is read and discarded; the status
  // stays kOk — only a heartbeat deadline can see this failure.
  ASSERT_EQ(pair.near->Poll(200, &got), WireChannel::RecvStatus::kOk);
  EXPECT_TRUE(got.empty());
  // Outgoing sends pretend success and deliver nothing.
  EXPECT_TRUE(pair.near->Send(WireMsg::kStop, {}));
  EXPECT_TRUE(pair.near->Queue(WireMsg::kStop, {}, /*droppable=*/false));
  std::vector<WireFrame> far_got;
  EXPECT_EQ(pair.far->Poll(100, &far_got), WireChannel::RecvStatus::kOk);
  EXPECT_TRUE(far_got.empty());
}

TEST(FaultChannelTest, PercentScheduleIsDeterministicPerSeed) {
  auto run = [](u64 seed) {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    FaultInjectingChannel near(std::make_unique<WireChannel>(fds[0]),
                               {FaultAction{FaultAction::Kind::kDrop, 0, 50}}, seed);
    WireChannel far(fds[1]);
    for (u64 seq = 1; seq <= 32; ++seq) {
      EXPECT_TRUE(far.Send(WireMsg::kHeartbeat, BeatPayload(seq)));
    }
    std::vector<WireFrame> got;
    EXPECT_EQ(near.Poll(200, &got), WireChannel::RecvStatus::kOk);
    std::vector<u64> seqs;
    for (const WireFrame& frame : got) {
      WireReader r(frame.payload.data(), frame.payload.size());
      WireHeartbeat beat;
      EXPECT_TRUE(DecodeHeartbeat(&r, &beat));
      seqs.push_back(beat.seq);
    }
    return seqs;
  };
  const std::vector<u64> a = run(41);
  const std::vector<u64> b = run(41);
  const std::vector<u64> c = run(42);
  EXPECT_EQ(a, b);              // Same seed: bit-identical schedule.
  EXPECT_FALSE(a.empty());      // 50% of 32 drops roughly half.
  EXPECT_LT(a.size(), 32u);
  EXPECT_NE(a, c);              // Different seed: different schedule.
}

// ----- End-to-end: shard killed at its first frame, mid-search. -----

TEST(DistFaultTest, ShardClosedMidSearchStillReproducesAndRecoversLedger) {
  auto pipeline = MustBuild(kDeepGuardedCrash);
  const InstrumentationPlan plan = pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(DeepGuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig config;
  config.num_shards = 2;
  config.num_workers = 2;
  // Shard 0's channel dies at its very first frame: its whole seeded
  // partition is unaccounted and must re-inject into shard 1. A fast
  // gossip cadence makes that first frame arrive well before either
  // shard can finish, so the kill is genuinely mid-search.
  config.fault_spec = "shard0:close@frame1";
  config.gossip_interval_ms = 2;
  config.heartbeat_interval_ms = 2;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();

  ASSERT_TRUE(replay.reproduced);
  EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));
  const ReplayStats& s = replay.stats;
  ASSERT_EQ(s.per_shard.size(), 2u);
  EXPECT_EQ(s.shards_lost, 1u);
  EXPECT_TRUE(s.per_shard[0].lost);
  EXPECT_FALSE(s.per_shard[1].lost);
  EXPECT_FALSE(s.fallback_inprocess);
  // The dead shard never reported, so its seeded count is the
  // coordinator's send-side number — and the ledger must have recovered
  // at least that much (its full column; carves can only add to it).
  EXPECT_GT(s.per_shard[0].pendings_seeded, 0u);
  EXPECT_GE(s.pendings_recovered, s.per_shard[0].pendings_seeded);
  EXPECT_EQ(s.pendings_recovered, s.per_shard[0].pendings_recovered);
}

TEST(DistFaultTest, HungShardIsDeclaredDeadByHeartbeatDeadline) {
  auto pipeline = MustBuild(kDeepGuardedCrash);
  const InstrumentationPlan plan = pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(DeepGuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig config;
  config.num_shards = 2;
  config.num_workers = 2;
  // Shard 0 hangs at its first frame: its socket stays open and every
  // byte both ways is swallowed. No close, no error — only silence.
  config.fault_spec = "shard0:hang@frame1";
  config.heartbeat_interval_ms = 25;
  config.heartbeat_timeout_ms = 400;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();

  ASSERT_TRUE(replay.reproduced);
  EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));
  const ReplayStats& s = replay.stats;
  ASSERT_EQ(s.per_shard.size(), 2u);
  EXPECT_EQ(s.shards_lost, 1u);
  EXPECT_TRUE(s.per_shard[0].lost);
  EXPECT_EQ(s.per_shard[0].heartbeats_missed, 1u);
  EXPECT_GE(s.heartbeats_missed, 1u);
  // Recovery is deliberately NOT asserted here: shard 1 usually wins
  // long before the 400 ms deadline expires, and post-win ledger
  // recovery is skipped by design (re-injecting work after the race is
  // decided would be pointless churn). The aggregate must still be the
  // lossless per-shard sum either way.
  EXPECT_EQ(s.pendings_recovered, s.per_shard[0].pendings_recovered);
}

TEST(DistFaultTest, WholeFleetDeathFallsBackToInProcessSearch) {
  auto pipeline = MustBuild(kDeepGuardedCrash);
  const InstrumentationPlan plan = pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(DeepGuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig config;
  config.num_shards = 2;
  config.num_workers = 2;
  // Every shard's channel dies at its first frame: nobody is left to
  // re-home work to, so the orphan pool must feed the in-process
  // fallback — which still owes the user an answer.
  config.fault_spec = "all:close@frame1";
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();

  ASSERT_TRUE(replay.reproduced);
  EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));
  const ReplayStats& s = replay.stats;
  EXPECT_EQ(s.shards_lost, 2u);
  EXPECT_TRUE(s.fallback_inprocess);
  EXPECT_GT(s.pendings_recovered, 0u);
}

TEST(DistFaultTest, CorruptFrameStormNeverCrashesTheCoordinator) {
  auto pipeline = MustBuild(kDeepGuardedCrash);
  const InstrumentationPlan plan = pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(DeepGuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig config;
  config.num_shards = 2;
  config.num_workers = 2;
  // Post-digest corruption: every decoder sees hostile payloads on a
  // stream the framing layer still trusts. The answer may be lost (a
  // corrupted kResult decodes to garbage or not at all) — the process
  // and the honesty of the outcome must not be.
  config.fault_spec = "all:corrupt%40";
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();

  EXPECT_EQ(replay.budget_exhausted, !replay.reproduced);
  const ReplayStats& s = replay.stats;
  ASSERT_EQ(s.per_shard.size(), 2u);
  u64 lost_flags = 0;
  for (const ReplayShardStats& shard : s.per_shard) {
    lost_flags += shard.lost ? 1 : 0;
  }
  EXPECT_EQ(s.shards_lost, lost_flags);
}

TEST(DistFaultTest, TcpShardClosedMidSearchStillReproduces) {
  auto pipeline = MustBuild(kDeepGuardedCrash);
  const InstrumentationPlan plan = pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(DeepGuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig config;
  config.num_shards = 2;
  config.num_workers = 2;
  config.transport = ReplayTransport::kTcp;
  // Same recovery invariant over the TCP transport. TcpTransport::Start
  // consumes kJoin itself, so the decorator's frame counter starts at
  // the first post-handshake frame — and a fast gossip cadence makes
  // that frame arrive well before either shard can finish its search,
  // keeping the kill genuinely mid-search. Shard 0 is the victim
  // because deepest-first round-robin dealing guarantees it owns at
  // least one ledgered pending (a tiny scouted frontier may leave the
  // last shard's partition empty).
  config.fault_spec = "shard0:close@frame1";
  config.gossip_interval_ms = 2;
  config.heartbeat_interval_ms = 2;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();

  ASSERT_TRUE(replay.reproduced);
  EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));
  const ReplayStats& s = replay.stats;
  ASSERT_EQ(s.per_shard.size(), 2u);
  EXPECT_EQ(s.shards_lost, 1u);
  EXPECT_TRUE(s.per_shard[0].lost);
  EXPECT_GT(s.pendings_recovered, 0u);
}

// ----- Reap hardening. -----

TEST(DistFaultTest, ReapEscalatesToSigkillOnAWedgedChild) {
  // A shard_main that never returns: without the WNOHANG grace window +
  // SIGKILL escalation, Reap() would block forever on this child.
  LocalForkTransport transport([](u32, int) -> bool {
    for (;;) {
      ::pause();
    }
  });
  std::vector<std::unique_ptr<WireChannel>> chans = transport.Start(1);
  ASSERT_EQ(chans.size(), 1u);
  ASSERT_NE(chans[0], nullptr);
  const i64 t0 = NowMs();
  transport.Reap();
  const i64 took = NowMs() - t0;
  // Grace is 2s; anything near it proves the escalation fired. A
  // generous ceiling keeps slow CI honest without flaking.
  EXPECT_LT(took, 15'000);
}

}  // namespace
}  // namespace retrace
