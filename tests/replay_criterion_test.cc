// Tests for the reproduction criterion: a witness must retrace the entire
// recorded branch log, not merely crash at the same program location.
#include <gtest/gtest.h>

#include "src/concolic/cellrun.h"
#include "src/core/pipeline.h"
#include "src/instrument/recorder.h"
#include "src/workloads/workloads.h"

namespace retrace {
namespace {

// A server-like loop: polls for a signal, reads and accumulates input,
// crashes when the signal arrives. A "shortcut" run could crash on the
// first poll without reading anything.
constexpr const char* kPollLoop = R"(
int main() {
  char buf[64];
  int total = 0;
  int iterations = 0;
  while (iterations < 50) {
    iterations = iterations + 1;
    if (poll_signal()) {
      crash(5);
    }
    int r = read(0, &buf[total], 8);
    if (r > 0) {
      total = total + r;
      if (buf[0] == 'Q') {
        exit(3);
      }
    }
  }
  return 0;
}
)";

InputSpec PollLoopInput() {
  InputSpec spec;
  spec.argv = {"prog"};
  spec.world.listen_fd = -1;
  spec.world.stdin_stream = 0;
  StreamShape stream;
  stream.name = "stdin";
  const std::string data = "abcdefghijklmnop";  // Two 8-byte reads.
  stream.bytes.assign(data.begin(), data.end());
  stream.length = static_cast<i64>(data.size());
  spec.world.streams.push_back(stream);
  return spec;
}

TEST(ReplayCriterionTest, WitnessRetracesExactBitSequence) {
  auto pipeline = Pipeline::FromSources(kPollLoop, {}).take();
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());

  // The signal arrives on the 4th poll: three loop iterations of real work
  // happen first.
  SignalAfterPolicy policy(3);
  Pipeline::UserRunOptions options;
  options.policy = &policy;
  const auto user = pipeline->RecordUserRun(PollLoopInput(), plan, options).take();
  ASSERT_TRUE(user.result.Crashed());
  ASSERT_GT(user.report.branch_log.size(), 10u);

  // Reproduce WITHOUT the syscall log: the engine must rediscover the
  // signal timing and read splits; an early-signal shortcut would leave
  // most of the branch log unconsumed and must be rejected.
  ReplayConfig config;
  config.use_syscall_log = false;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
  ASSERT_TRUE(replay.reproduced);

  // Re-run the witness with a recorder: it must produce the identical log.
  CellRunner runner(pipeline->module(), user.report.shape);
  BranchTraceRecorder recorder(plan);
  CellRunConfig run_config;
  run_config.model = replay.witness_cells;
  run_config.symbolic_syscalls = false;
  run_config.observers = {&recorder};
  run_config.plan = &plan;  // Recorder trusts the compiled site bit.
  const CellRunOutput rerun = runner.Run(run_config);
  ASSERT_TRUE(rerun.result.Crashed());
  EXPECT_TRUE(rerun.result.crash.SameSite(user.report.crash));
  EXPECT_EQ(recorder.TakeLog(), user.report.branch_log);
}

TEST(ReplayCriterionTest, EmptyPlanAcceptsAnyCrashAtSite) {
  // The no-logging end of the spectrum: with no bits to follow, the first
  // input reaching the site is a valid reproduction (pure search, as ESD).
  auto pipeline = Pipeline::FromSources(kPollLoop, {}).take();
  InstrumentationPlan empty;
  empty.method = InstrumentMethod::kDynamic;
  empty.branches = DenseBitset(pipeline->module().branches.size());
  SignalAfterPolicy policy(3);
  Pipeline::UserRunOptions options;
  options.policy = &policy;
  const auto user = pipeline->RecordUserRun(PollLoopInput(), empty, options).take();
  ASSERT_TRUE(user.result.Crashed());
  EXPECT_EQ(user.report.branch_log.size(), 0u);
  ReplayConfig config;
  config.use_syscall_log = false;
  const ReplayResult replay = pipeline->Reproduce(user.report, empty, config).take();
  EXPECT_TRUE(replay.reproduced);
}

TEST(ReplayCriterionTest, SyscallLogDivergenceFallsBackToSymbolic) {
  // A log recorded from a different call order: the virtual OS detects the
  // divergence and continues with symbolic cells instead of bogus pins.
  auto pipeline = Pipeline::FromSources(R"(
    int main() {
      char buf[8];
      if (poll_signal()) {
        return read(0, buf, 4);
      }
      return 7;
    }
  )",
                                        {})
                      .take();
  InputSpec spec;
  spec.argv = {"prog"};
  spec.world.listen_fd = -1;
  spec.world.stdin_stream = 0;
  spec.world.streams.push_back(StreamShape{"stdin", {'x', 'y'}, 2, -1});

  // Log claims the first syscall was a read — but the program polls first.
  SyscallLog bogus = {{Builtin::kRead, 2}};
  CellRunner runner(pipeline->module(), spec);
  CellRunConfig config;
  config.replay_log = &bogus;
  const CellRunOutput out = runner.Run(config);
  EXPECT_TRUE(out.log_diverged);
  EXPECT_EQ(out.result.status, RunResult::Status::kExit);
}

}  // namespace
}  // namespace retrace
