// Differential parity suite: the bytecode VM against the tree-walking
// interpreter. The two engines are contractually bit-identical (same
// RunResult, observer sequence, shadow refs, crash sites, RunStats);
// this file enforces the contract on randomized IR programs, on every
// miniature scenario the experiments run, and across plan-specialized
// and pooled-reuse paths.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/concolic/cellrun.h"
#include "src/exec/interp.h"
#include "src/exec/vm.h"
#include "src/instrument/recorder.h"
#include "src/support/rng.h"
#include "src/workloads/scenarios.h"
#include "src/workloads/workloads.h"
#include "tests/testutil.h"

namespace retrace {
namespace {

// Records the full observer-visible branch sequence. Both engines reach
// OnBranch (the VM through the default OnBranchCompiled forwarding), so
// identical sequences mean identical branch ids, directions, and shadow
// expression refs in arena-construction order.
class SeqObserver : public BranchObserver {
 public:
  Action OnBranch(i32 branch_id, bool taken, ExprRef cond_shadow) override {
    ids.push_back(branch_id);
    taken_bits.push_back(taken);
    shadows.push_back(cond_shadow);
    return Action::kContinue;
  }

  std::vector<i32> ids;
  std::vector<bool> taken_bits;
  std::vector<ExprRef> shadows;
};

struct Capture {
  RunResult result;
  std::vector<i32> ids;
  std::vector<bool> taken_bits;
  std::vector<ExprRef> shadows;
  BitVec recorder_log;
};

// Runs `module` on a fresh engine of `kind`. Each capture gets its own
// arena so shadow refs are comparable as raw integers (interning order
// must match between engines).
Capture RunEngine(ExecEngineKind kind, const IrModule& module,
                  const std::vector<std::string>& argv,
                  const std::vector<std::vector<i32>>& argv_cells, bool shadow,
                  const InstrumentationPlan* plan = nullptr) {
  InterpOptions options;
  options.max_steps = 3'000'000;
  std::unique_ptr<ExecEngine> engine = MakeExecEngine(kind, module, options);
  SeqObserver seq;
  engine->AddObserver(&seq);
  InstrumentationPlan empty;
  BranchTraceRecorder recorder(plan != nullptr ? *plan : empty);
  if (plan != nullptr) {
    engine->AddObserver(&recorder);
    engine->SpecializePlan(plan);
  }
  ExprArena arena;
  if (shadow) {
    engine->set_shadow_arena(&arena);
  }
  Capture capture;
  capture.result = engine->Run(argv, argv_cells);
  capture.ids = std::move(seq.ids);
  capture.taken_bits = std::move(seq.taken_bits);
  capture.shadows = std::move(seq.shadows);
  if (plan != nullptr) {
    capture.recorder_log = recorder.TakeLog();
  }
  return capture;
}

void ExpectSameCapture(const Capture& tree, const Capture& vm, const std::string& label) {
  EXPECT_EQ(static_cast<int>(tree.result.status), static_cast<int>(vm.result.status)) << label;
  EXPECT_EQ(tree.result.exit_code, vm.result.exit_code) << label;
  EXPECT_EQ(tree.result.message, vm.result.message) << label;
  EXPECT_TRUE(tree.result.crash.SameSite(vm.result.crash)) << label;
  EXPECT_EQ(tree.result.crash.code, vm.result.crash.code) << label;
  EXPECT_EQ(tree.result.stats.instrs, vm.result.stats.instrs) << label;
  EXPECT_EQ(tree.result.stats.branch_execs, vm.result.stats.branch_execs) << label;
  EXPECT_EQ(tree.result.stats.calls, vm.result.stats.calls) << label;
  EXPECT_EQ(tree.result.stats.syscalls, vm.result.stats.syscalls) << label;
  EXPECT_EQ(tree.ids, vm.ids) << label;
  EXPECT_EQ(tree.taken_bits, vm.taken_bits) << label;
  EXPECT_EQ(tree.shadows, vm.shadows) << label;
  EXPECT_EQ(tree.recorder_log, vm.recorder_log) << label;
}

// ----- Randomized IR programs -----
//
// A fixed skeleton with randomized expressions, branch structure, loops,
// array traffic and helper calls. Deliberately allowed to divide by zero
// or index out of bounds: crash parity is part of the contract.

std::string GenExpr(Rng& rng, int depth, const std::vector<std::string>& vars) {
  if (depth <= 0 || rng.NextBelow(3) == 0) {
    if (!vars.empty() && rng.NextBelow(2) == 0) {
      return vars[rng.NextBelow(vars.size())];
    }
    return std::to_string(static_cast<i64>(rng.NextBelow(40)) - 6);
  }
  static const char* kOps[] = {"+", "-", "*", "/",  "%",  "<",  "<=", ">",  ">=",
                               "==", "!=", "&", "|", "^",  "<<", ">>", "&&", "||"};
  static const char* kUn[] = {"-", "~", "!"};
  if (rng.NextBelow(5) == 0) {
    // The space keeps "-(-3)" from lexing as the "--" operator.
    return std::string("(") + kUn[rng.NextBelow(3)] + " " + GenExpr(rng, depth - 1, vars) + ")";
  }
  return "(" + GenExpr(rng, depth - 1, vars) + " " + kOps[rng.NextBelow(18)] + " " +
         GenExpr(rng, depth - 1, vars) + ")";
}

void GenStmts(Rng& rng, int depth, int count, std::vector<std::string>* vars, int* next_var,
              std::ostringstream* os, const std::string& indent) {
  for (int s = 0; s < count; ++s) {
    switch (rng.NextBelow(depth > 0 ? 8 : 6)) {
      case 0: {  // New local.
        std::string name = "v" + std::to_string((*next_var)++);
        *os << indent << "int " << name << " = " << GenExpr(rng, 2, *vars) << ";\n";
        vars->push_back(name);
        break;
      }
      case 1:  // Assignment.
        *os << indent << (*vars)[rng.NextBelow(vars->size())] << " = "
            << GenExpr(rng, 3, *vars) << ";\n";
        break;
      case 2: {  // Array store; mostly masked in-bounds, sometimes not.
        const bool masked = rng.NextBelow(8) != 0;
        *os << indent << "arr[" << (masked ? "(" : "") << GenExpr(rng, 2, *vars)
            << (masked ? ") & 7" : "") << "] = " << GenExpr(rng, 2, *vars) << ";\n";
        break;
      }
      case 3:  // Array load.
        *os << indent << (*vars)[rng.NextBelow(vars->size())] << " = arr[("
            << GenExpr(rng, 2, *vars) << ") & 7];\n";
        break;
      case 4:  // Helper call (char param truncation rides along).
        *os << indent << (*vars)[rng.NextBelow(vars->size())] << " = helper("
            << GenExpr(rng, 2, *vars) << ", " << GenExpr(rng, 2, *vars) << ");\n";
        break;
      case 5:  // argv byte; index 8 is the NUL, 9 is out of bounds.
        *os << indent << (*vars)[rng.NextBelow(vars->size())] << " = argv[1]["
            << rng.NextBelow(10) << "];\n";
        break;
      case 6: {  // Branch. Inner declarations are block-scoped: each arm
        // works on a scoped COPY of the variable list.
        *os << indent << "if (" << GenExpr(rng, 3, *vars) << ") {\n";
        std::vector<std::string> then_vars = *vars;
        GenStmts(rng, depth - 1, 1 + static_cast<int>(rng.NextBelow(3)), &then_vars, next_var,
                 os, indent + "  ");
        *os << indent << "} else {\n";
        std::vector<std::string> else_vars = *vars;
        GenStmts(rng, depth - 1, 1 + static_cast<int>(rng.NextBelow(2)), &else_vars, next_var,
                 os, indent + "  ");
        *os << indent << "}\n";
        break;
      }
      default: {  // Bounded loop over a dedicated counter.
        std::string counter = "c" + std::to_string((*next_var)++);
        *os << indent << "int " << counter << " = " << (1 + rng.NextBelow(12)) << ";\n";
        *os << indent << "while (" << counter << " > 0) {\n";
        *os << indent << "  " << counter << " = " << counter << " - 1;\n";
        std::vector<std::string> body_vars = *vars;
        body_vars.push_back(counter);
        GenStmts(rng, depth - 1, 1 + static_cast<int>(rng.NextBelow(2)), &body_vars, next_var,
                 os, indent + "  ");
        *os << indent << "}\n";
        break;
      }
    }
  }
}

std::string GenProgram(Rng& rng) {
  std::ostringstream os;
  os << "int helper(char a, int b) { if (a > b) { return a - b; } return a + b * 2; }\n";
  os << "int main(int argc, char **argv) {\n";
  os << "  int arr[8];\n";
  os << "  for (int z = 0; z < 8; z = z + 1) { arr[z] = z * 3; }\n";
  std::vector<std::string> vars = {"argc"};
  int next_var = 0;
  GenStmts(rng, 2, 6 + static_cast<int>(rng.NextBelow(8)), &vars, &next_var, &os, "  ");
  os << "  return " << GenExpr(rng, 3, vars) << ";\n";
  os << "}\n";
  return os.str();
}

class RandomProgramParity : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramParity, BitIdentical) {
  Rng rng(GetParam() * 2654435761u + 17);
  const std::string src = GenProgram(rng);
  SCOPED_TRACE(src);
  Compiled c = CompileOrDie(src);
  ASSERT_NE(c.module, nullptr);

  const std::vector<std::string> argv = {"prog", "AbC19xyz"};
  // Cells backing argv[1]'s bytes: symbolic argv in shadow mode.
  std::vector<std::vector<i32>> argv_cells(2);
  for (i32 i = 0; i < 8; ++i) {
    argv_cells[1].push_back(i);
  }
  for (const bool shadow : {false, true}) {
    const Capture tree =
        RunEngine(ExecEngineKind::kTree, *c.module, argv, argv_cells, shadow);
    const Capture vm =
        RunEngine(ExecEngineKind::kBytecode, *c.module, argv, argv_cells, shadow);
    ExpectSameCapture(tree, vm, shadow ? "shadow" : "concrete");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramParity, ::testing::Range(1, 25));

// ----- Plan-specialized dispatch -----

TEST(ExecVmTest, PlanSpecializedRecorderParity) {
  Compiled c = CompileOrDie(R"(
    int main(int argc, char **argv) {
      int s = 0;
      for (int i = 0; i < 6; i = i + 1) {
        if (argv[1][0] == 'a') { s = s + 1; }
        if (i % 2 == 0) { s = s + 2; }
        while (s > 100) { s = s - 7; }
      }
      return s;
    }
  )");
  ASSERT_NE(c.module, nullptr);
  const size_t n = c.module->branches.size();
  ASSERT_GT(n, 2u);
  Rng rng(99);
  for (int trial = 0; trial < 8; ++trial) {
    InstrumentationPlan plan;
    plan.branches = DenseBitset(n);
    for (size_t b = 0; b < n; ++b) {
      if (rng.NextBelow(2) == 0) {
        plan.branches.Set(b);
      }
    }
    const std::vector<std::string> argv = {"prog", trial % 2 == 0 ? "abc" : "xyz"};
    const Capture tree =
        RunEngine(ExecEngineKind::kTree, *c.module, argv, {}, false, &plan);
    const Capture vm =
        RunEngine(ExecEngineKind::kBytecode, *c.module, argv, {}, false, &plan);
    ExpectSameCapture(tree, vm, "trial " + std::to_string(trial));
  }
}

TEST(ExecVmTest, RespecializationTracksPlanMutation) {
  // Adaptive refinement mutates the plan in place between runs; the VM
  // must re-bake branch opcodes on every SpecializePlan call.
  Compiled c = CompileOrDie(R"(
    int main(int argc, char **argv) {
      int s = 0;
      for (int i = 0; i < 5; i = i + 1) { if (i < 3) { s = s + i; } }
      return s;
    }
  )");
  ASSERT_NE(c.module, nullptr);
  const size_t n = c.module->branches.size();
  BytecodeVm vm(*c.module, InterpOptions{});
  InstrumentationPlan plan;
  plan.branches = DenseBitset(n);

  InstrumentedExecCounter none_counter(plan);
  vm.AddObserver(&none_counter);
  vm.SpecializePlan(&plan);
  ASSERT_EQ(vm.Run({"prog", "x"}, {}).status, RunResult::Status::kExit);
  EXPECT_EQ(none_counter.count(), 0u);

  for (size_t b = 0; b < n; ++b) {
    plan.branches.Set(b);  // In-place mutation, same plan object.
  }
  vm.ClearObservers();
  InstrumentedExecCounter all_counter(plan);
  vm.AddObserver(&all_counter);
  vm.SpecializePlan(&plan);
  const RunResult r = vm.Run({"prog", "x"}, {});
  ASSERT_EQ(r.status, RunResult::Status::kExit);
  EXPECT_EQ(all_counter.count(), r.stats.branch_execs);
}

// ----- Pooled reuse -----

TEST(ExecVmTest, PooledEngineRunsAreReproducible) {
  // The same engine instance re-run must be indistinguishable from a
  // fresh engine: object-pool generations never leak into results.
  Compiled c = CompileOrDie(R"(
    int leaf(int n) { int buf[4]; buf[n & 3] = n; return buf[n & 3] * 2; }
    int main(int argc, char **argv) {
      int s = 0;
      for (int i = 0; i < 10; i = i + 1) { s = s + leaf(i + argv[1][0]); }
      return s % 251;
    }
  )");
  ASSERT_NE(c.module, nullptr);
  for (const ExecEngineKind kind : {ExecEngineKind::kTree, ExecEngineKind::kBytecode}) {
    InterpOptions options;
    std::unique_ptr<ExecEngine> engine = MakeExecEngine(kind, *c.module, options);
    const RunResult first = engine->Run({"prog", "k"}, {});
    const RunResult again = engine->Run({"prog", "k"}, {});
    const RunResult other = engine->Run({"prog", "Q"}, {});
    const RunResult back = engine->Run({"prog", "k"}, {});
    EXPECT_EQ(first.exit_code, again.exit_code);
    EXPECT_EQ(first.exit_code, back.exit_code);
    EXPECT_EQ(first.stats.instrs, again.stats.instrs);
    EXPECT_EQ(first.stats.instrs, back.stats.instrs);
    EXPECT_NE(first.exit_code, other.exit_code);
  }
}

// ----- Scenario parity through the cell runner -----

struct ScenarioCase {
  std::string name;
  WorkloadSources sources;
  InputSpec spec;
  std::shared_ptr<NondetPolicy> policy;
};

std::vector<ScenarioCase> AllScenarioCases() {
  std::vector<ScenarioCase> cases;
  cases.push_back({"listing1", Listing1Workload(), Listing1Spec('a'), nullptr});
  cases.push_back({"loop_micro", LoopMicroWorkload(), LoopMicroSpec(500), nullptr});
  for (const std::string tool : {"mkdir", "mknod", "mkfifo", "paste"}) {
    Scenario bug = CoreutilsBugScenario(tool);
    cases.push_back({"bug_" + tool, GetWorkload(tool), bug.spec, bug.policy});
    Scenario benign = CoreutilsBenignScenario(tool);
    cases.push_back({"benign_" + tool, GetWorkload(tool), benign.spec, benign.policy});
  }
  for (int exp = 1; exp <= 5; ++exp) {
    Scenario s = UserverScenario(exp);
    cases.push_back({"userver_" + std::to_string(exp), UserverWorkload(), s.spec, s.policy});
  }
  for (int exp = 1; exp <= 2; ++exp) {
    Scenario s = DiffScenario(exp);
    cases.push_back({"diff_" + std::to_string(exp), DiffWorkload(), s.spec, s.policy});
  }
  return cases;
}

TEST(ExecVmTest, ScenariosBitIdenticalAcrossEngines) {
  for (const ScenarioCase& sc : AllScenarioCases()) {
    SCOPED_TRACE(sc.name);
    Compiled c = CompileOrDie(sc.sources.app, sc.sources.libs);
    ASSERT_NE(c.module, nullptr);
    InstrumentationPlan plan;
    plan.branches = DenseBitset(c.module->branches.size());
    for (size_t b = 0; b < c.module->branches.size(); ++b) {
      plan.branches.Set(b);
    }
    CellRunner runner(*c.module, sc.spec);
    Capture captures[2];
    CellRunOutput outputs[2];
    const ExecEngineKind kinds[2] = {ExecEngineKind::kTree, ExecEngineKind::kBytecode};
    for (int e = 0; e < 2; ++e) {
      ExprArena arena;
      SeqObserver seq;
      BranchTraceRecorder recorder(plan);
      CellRunConfig config;
      config.policy = sc.policy.get();
      config.arena = &arena;
      config.observers = {&seq, &recorder};
      config.plan = &plan;
      config.engine = kinds[e];
      outputs[e] = runner.Run(config);
      captures[e].result = outputs[e].result;
      captures[e].ids = std::move(seq.ids);
      captures[e].taken_bits = std::move(seq.taken_bits);
      captures[e].shadows = std::move(seq.shadows);
      captures[e].recorder_log = recorder.TakeLog();
    }
    ExpectSameCapture(captures[0], captures[1], sc.name);
    EXPECT_EQ(outputs[0].cells, outputs[1].cells) << sc.name;
    EXPECT_EQ(outputs[0].stdout_text, outputs[1].stdout_text) << sc.name;
    EXPECT_EQ(outputs[0].domains.size(), outputs[1].domains.size()) << sc.name;
    EXPECT_EQ(outputs[0].dyn_trace.size(), outputs[1].dyn_trace.size()) << sc.name;
  }
}

// ----- Environment knob -----

TEST(ExecVmDeathTest, HostileEngineEnvExitsLoudly) {
  EXPECT_EXIT(
      {
        setenv("RETRACE_EXEC_ENGINE", "jit", 1);
        ExecEngineKindFromEnv();
      },
      ::testing::ExitedWithCode(2), "invalid value 'jit'");
}

TEST(ExecVmTest, EngineEnvParsesStrictly) {
  setenv("RETRACE_EXEC_ENGINE", "bytecode", 1);
  EXPECT_EQ(ExecEngineKindFromEnv(), ExecEngineKind::kBytecode);
  setenv("RETRACE_EXEC_ENGINE", "tree", 1);
  EXPECT_EQ(ExecEngineKindFromEnv(), ExecEngineKind::kTree);
  unsetenv("RETRACE_EXEC_ENGINE");
  EXPECT_EQ(ExecEngineKindFromEnv(), ExecEngineKind::kTree);
  EXPECT_EQ(ResolveExecEngineKind(ExecEngineKind::kBytecode), ExecEngineKind::kBytecode);
  EXPECT_EQ(ResolveExecEngineKind(ExecEngineKind::kDefault), ExecEngineKind::kTree);
}

}  // namespace
}  // namespace retrace
