#include <gtest/gtest.h>

#include "src/core/pipeline.h"
#include "src/workloads/scenarios.h"
#include "src/workloads/workloads.h"

namespace retrace {
namespace {

// A small program with an input-guarded crash: crashes iff argv[1] starts
// with "k9" and argv[2][0] > '5'.
constexpr const char* kGuardedCrash = R"(
int main(int argc, char **argv) {
  if (argc < 3) { return 1; }
  if (argv[1][0] == 'k') {
    if (argv[1][1] == '9') {
      if (argv[2][0] > '5') {
        crash(13);
      }
    }
  }
  return 0;
}
)";

std::unique_ptr<Pipeline> MustBuild(std::string_view app,
                                    const std::vector<std::string>& libs = {}) {
  auto r = Pipeline::FromSources(app, libs);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().ToString());
  return r.take();
}

InputSpec GuardedCrashInput() {
  InputSpec spec;
  spec.argv = {"prog", "k9", "7"};
  spec.world.listen_fd = -1;
  return spec;
}

TEST(ReplayTest, ReproducesWithAllBranches) {
  auto pipeline = MustBuild(kGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(GuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());
  EXPECT_EQ(user.result.crash.kind, CrashSite::Kind::kExplicit);

  ReplayConfig config;
  config.seed = 11;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
  ASSERT_TRUE(replay.reproduced);
  // The witness must satisfy the guard but need not equal the original.
  ASSERT_GE(replay.witness_argv.size(), 3u);
  EXPECT_EQ(replay.witness_argv[1][0], 'k');
  EXPECT_EQ(replay.witness_argv[1][1], '9');
  EXPECT_GT(replay.witness_argv[2][0], '5');
  EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));
}

TEST(ReplayTest, ReproducesWithDynamicPlan) {
  auto pipeline = MustBuild(kGuardedCrash);
  AnalysisConfig dyn_config;
  dyn_config.max_runs = 32;
  // Analyze with a *benign* input of the same shape (the developer tests
  // before shipping; the bug input is unknown).
  InputSpec benign;
  benign.argv = {"prog", "ab", "c"};
  benign.world.listen_fd = -1;
  const AnalysisResult dyn = pipeline->RunDynamicAnalysis(benign, dyn_config);
  const InstrumentationPlan plan = pipeline->MakePlan(PlanInputs::Dynamic(dyn));
  EXPECT_LT(plan.NumInstrumented(), pipeline->module().branches.size());

  const auto user = pipeline->RecordUserRun(GuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, ReplayConfig{}).take();
  ASSERT_TRUE(replay.reproduced);
  EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));
}

TEST(ReplayTest, ReproducesWithCombinedPlan) {
  auto pipeline = MustBuild(kGuardedCrash);
  AnalysisConfig dyn_config;
  dyn_config.max_runs = 8;
  InputSpec benign;
  benign.argv = {"prog", "ab", "c"};
  benign.world.listen_fd = -1;
  const AnalysisResult dyn = pipeline->RunDynamicAnalysis(benign, dyn_config);
  const StaticAnalysisResult stat = pipeline->RunStaticAnalysis({});
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::DynamicStatic(dyn, stat));

  const auto user = pipeline->RecordUserRun(GuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, ReplayConfig{}).take();
  ASSERT_TRUE(replay.reproduced);
}

TEST(ReplayTest, EmptyPlanStillSearches) {
  // With nothing instrumented the engine degenerates to plain symbolic
  // search (the paper's "no recording" end of the spectrum): it must still
  // find this shallow bug, just with more runs.
  auto pipeline = MustBuild(kGuardedCrash);
  InstrumentationPlan empty;
  empty.method = InstrumentMethod::kDynamic;
  empty.branches = DenseBitset(pipeline->module().branches.size());
  const auto user = pipeline->RecordUserRun(GuardedCrashInput(), empty, {}).take();
  ASSERT_TRUE(user.result.Crashed());
  EXPECT_EQ(user.report.branch_log.size(), 0u);
  const ReplayResult replay = pipeline->Reproduce(user.report, empty, ReplayConfig{}).take();
  EXPECT_TRUE(replay.reproduced);
}

TEST(ReplayTest, WitnessDiffersButActivatesBug) {
  // Privacy property: reproduction does not need the original bytes. Run
  // with an original whose "payload" bytes are irrelevant to the bug and
  // check the witness found random other bytes.
  auto pipeline = MustBuild(R"(
    int main(int argc, char **argv) {
      if (argc < 3) { return 1; }
      if (argv[1][0] == 'k') { crash(1); }
      return 0;
    }
  )");
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  InputSpec original;
  original.argv = {"prog", "k", "private-payload-data"};
  original.world.listen_fd = -1;
  const auto user = pipeline->RecordUserRun(original, plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());
  ReplayConfig config;
  config.seed = 99;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
  ASSERT_TRUE(replay.reproduced);
  EXPECT_EQ(replay.witness_argv[1][0], 'k');
  // The unconstrained payload should not have been reconstructed.
  EXPECT_NE(replay.witness_argv[2], "private-payload-data");
}

TEST(ReplayTest, SyscallLogSpeedsUpReplay) {
  // Bug guarded by how many bytes read() returned: without the syscall
  // log the engine must search for the return value.
  constexpr const char* kReadBug = R"(
    int main() {
      char buf[64];
      int n = read(0, buf, 60);
      if (n == 13) {
        if (buf[0] == 'Z') { crash(2); }
      }
      return 0;
    }
  )";
  auto pipeline = MustBuild(kReadBug);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  InputSpec spec;
  spec.argv = {"prog"};
  spec.world.listen_fd = -1;
  spec.world.stdin_stream = 0;
  StreamShape stream;
  stream.name = "stdin";
  const std::string data = "Zsecretsecret";  // 13 bytes.
  stream.bytes.assign(data.begin(), data.end());
  stream.length = 13;
  spec.world.streams.push_back(stream);

  const auto user = pipeline->RecordUserRun(spec, plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig with_log;
  with_log.use_syscall_log = true;
  const ReplayResult fast = pipeline->Reproduce(user.report, plan, with_log).take();
  ASSERT_TRUE(fast.reproduced);

  ReplayConfig without_log;
  without_log.use_syscall_log = false;
  const ReplayResult slow = pipeline->Reproduce(user.report, plan, without_log).take();
  ASSERT_TRUE(slow.reproduced);
  EXPECT_LE(fast.stats.runs, slow.stats.runs);
}

TEST(ReplayTest, BudgetExhaustionReported) {
  auto pipeline = MustBuild(kGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(GuardedCrashInput(), plan, {}).take();
  ReplayConfig config;
  config.max_runs = 1;  // The initial random run almost surely misses.
  config.seed = 5;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
  EXPECT_FALSE(replay.reproduced);
  EXPECT_TRUE(replay.budget_exhausted);
}

TEST(ReplayTest, FifoPickAlsoWorks) {
  auto pipeline = MustBuild(kGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(GuardedCrashInput(), plan, {}).take();
  ReplayConfig config;
  config.pick = ReplayConfig::Pick::kFifo;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
  EXPECT_TRUE(replay.reproduced);
}

}  // namespace
}  // namespace retrace
