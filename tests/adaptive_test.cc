// Adaptive instrumentation planning: failure-telemetry aggregation,
// plan refinement, log-irrelevance learning, corpus mutation, the
// strict env-knob constructor, and the Pipeline::ReproduceAdaptive
// loop end-to-end on a program whose blind search dies on a decoy
// crash until refinement logs the decoy branch away.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/analysis/log_irrelevance.h"
#include "src/analysis/points_to.h"
#include "src/concolic/corpus_mutate.h"
#include "src/core/pipeline.h"
#include "src/instrument/refine.h"
#include "tests/testutil.h"

namespace retrace {
namespace {

std::unique_ptr<Pipeline> MustBuild(std::string_view app) {
  auto r = Pipeline::FromSources(app);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().ToString());
  return r.take();
}

// ----- ReplayFailureProfile aggregation -----

TEST(FailureProfileTest, MergeIsASortedUnionSummingCounters) {
  ReplayFailureProfile a;
  a.branches = {{2, 1, 0, 0, 10}, {5, 0, 2, 0, 20}};
  a.deaths_unattributed = 3;
  ReplayFailureProfile b;
  b.branches = {{1, 0, 0, 1, 5}, {5, 4, 0, 1, 7}, {9, 1, 1, 1, 1}};
  b.deaths_unattributed = 4;

  a.Merge(b);
  ASSERT_EQ(a.branches.size(), 4u);
  EXPECT_EQ(a.branches[0].branch_id, 1u);
  EXPECT_EQ(a.branches[1].branch_id, 2u);
  EXPECT_EQ(a.branches[2].branch_id, 5u);
  EXPECT_EQ(a.branches[3].branch_id, 9u);
  EXPECT_EQ(a.branches[2].deaths_concrete, 4u);
  EXPECT_EQ(a.branches[2].deaths_exhausted, 2u);
  EXPECT_EQ(a.branches[2].deaths_wrong_crash, 1u);
  EXPECT_EQ(a.branches[2].blind_execs, 27u);
  EXPECT_EQ(a.deaths_unattributed, 7u);
  // Per-branch deaths (1 + 1 + 7 + 3) plus the unattributed pool (7).
  EXPECT_EQ(a.TotalDeaths(), 19u);

  const BranchFailureCounts* found = a.Find(5);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->Deaths(), 7u);
  EXPECT_EQ(a.Find(4), nullptr);
}

TEST(FailureProfileTest, MergeIntoEmptyCopies) {
  ReplayFailureProfile empty;
  ReplayFailureProfile b;
  b.branches = {{7, 1, 2, 3, 4}};
  empty.Merge(b);
  ASSERT_EQ(empty.branches.size(), 1u);
  EXPECT_EQ(empty.branches[0].Deaths(), 6u);
  EXPECT_FALSE(empty.Empty());
}

// ----- RefinePlan: mining the profile into added log bits -----

InstrumentationPlan TenBranchPlan() {
  InstrumentationPlan plan;
  plan.method = InstrumentMethod::kDynamic;
  plan.branches = DenseBitset(10);
  plan.branches.Set(0);
  plan.provenance = "dynamic";
  return plan;
}

TEST(RefineTest, PromotesDeadliestUnloggedBranchesFirst) {
  ReplayFailureProfile profile;
  profile.branches = {
      {0, 50, 0, 0, 1},  // Already instrumented: never a candidate.
      {2, 1, 0, 0, 99},
      {4, 0, 3, 0, 5},   // Most deaths: first pick.
      {6, 2, 0, 0, 50},  // Ties with 8 on deaths, more blind execs.
      {8, 2, 0, 0, 10},
  };
  RefineConfig config;
  config.max_added_branches = 2;
  const RefineOutcome out = RefinePlan(TenBranchPlan(), profile, nullptr, config);
  EXPECT_EQ(out.candidates, 4u);
  ASSERT_EQ(out.added.size(), 2u);
  EXPECT_EQ(out.added[0], 4);
  EXPECT_EQ(out.added[1], 6);
  EXPECT_TRUE(out.plan.Instrumented(4));
  EXPECT_TRUE(out.plan.Instrumented(6));
  EXPECT_FALSE(out.plan.Instrumented(2));
  EXPECT_EQ(out.plan.detail_level, 1u);
  EXPECT_EQ(out.plan.provenance, "dynamic +refine#1(2)");
}

TEST(RefineTest, MinDeathsFiltersBlindButAliveBranches) {
  ReplayFailureProfile profile;
  profile.branches = {{3, 0, 0, 0, 1000}};  // Blind execs, zero deaths.
  const RefineOutcome out = RefinePlan(TenBranchPlan(), profile, nullptr, RefineConfig{});
  EXPECT_EQ(out.candidates, 0u);
  EXPECT_TRUE(out.added.empty());
  // Convergence: the plan is byte-identical, no provenance noise.
  EXPECT_EQ(out.plan.detail_level, 0u);
  EXPECT_EQ(out.plan.provenance, "dynamic");
  EXPECT_EQ(out.plan.branches, TenBranchPlan().branches);
}

TEST(RefineTest, SecondRoundStacksProvenance) {
  ReplayFailureProfile profile;
  profile.branches = {{2, 1, 0, 0, 1}, {4, 1, 0, 0, 1}};
  RefineConfig config;
  config.max_added_branches = 1;
  const RefineOutcome first = RefinePlan(TenBranchPlan(), profile, nullptr, config);
  ASSERT_EQ(first.added.size(), 1u);
  const RefineOutcome second = RefinePlan(first.plan, profile, nullptr, config);
  ASSERT_EQ(second.added.size(), 1u);
  EXPECT_NE(second.added[0], first.added[0]);
  EXPECT_EQ(second.plan.detail_level, 2u);
  EXPECT_EQ(second.plan.provenance, "dynamic +refine#1(1) +refine#2(1)");
}

// ----- Log-irrelevance learning -----

TEST(LogIrrelevanceTest, ProvesDeadStoreBranchPureAndCrashGuardImpure) {
  // The argv[1][1] branch only writes a slot nothing ever reads again:
  // flipping it cannot change any logged outcome. The argv[1][0] branch
  // feeds x into the crash guard, and the guard itself returns/crashes —
  // both must stay relevant.
  Compiled c = CompileOrDie(R"(
    int main(int argc, char **argv) {
      int x = 0;
      int y = 0;
      if (argv[1][0] == 'a') { x = 1; }
      if (argv[1][1] == 'b') { y = 1; }
      if (x == 1) { crash(7); }
      return 0;
    }
  )");
  ASSERT_NE(c.module, nullptr);
  const PointsTo points_to = PointsTo::Compute(*c.module);
  const LogIrrelevance ir = LogIrrelevance::Compute(*c.module, points_to);
  ASSERT_EQ(ir.num_branches(), c.module->branches.size());
  EXPECT_EQ(ir.num_pure(), 1u);

  DenseBitset nothing_logged(c.module->branches.size());
  size_t irrelevant = 0;
  for (size_t id = 0; id < c.module->branches.size(); ++id) {
    if (ir.Irrelevant(static_cast<i32>(id), nothing_logged)) {
      ++irrelevant;
      EXPECT_TRUE(ir.Info(static_cast<i32>(id)).pure);
    }
  }
  EXPECT_EQ(irrelevant, 1u);
}

TEST(LogIrrelevanceTest, LoadsAndLoopsStayRelevant) {
  // Both branch bodies are impure: one loads through a pointer, the
  // other loops. Nothing is provably irrelevant here.
  Compiled c = CompileOrDie(R"(
    int g[4];
    int main(int argc, char **argv) {
      int y = 0;
      if (argv[1][0] == 'a') { y = g[1]; }
      if (argv[1][1] == 'b') {
        int i = 0;
        while (i < 3) { i = i + 1; }
      }
      return 0;
    }
  )");
  ASSERT_NE(c.module, nullptr);
  const LogIrrelevance ir = LogIrrelevance::Compute(*c.module, PointsTo::Compute(*c.module));
  EXPECT_EQ(ir.num_pure(), 0u);
}

// ----- Corpus mutation -----

TEST(CorpusMutateTest, OriginalsFirstThenDeterministicMutants) {
  const std::vector<std::vector<i64>> corpus = {{107, 57, 0}, {97, 98, 99}};
  const auto out = MutateCorpus(corpus, /*seed=*/11, /*mutants_per_seed=*/3,
                                /*max_total=*/100);
  ASSERT_EQ(out.size(), 2u + 2u * 3u);
  EXPECT_EQ(out[0], corpus[0]);
  EXPECT_EQ(out[1], corpus[1]);
  for (size_t i = 2; i < out.size(); ++i) {
    // Every operator preserves the cell layout.
    EXPECT_EQ(out[i].size(), 3u) << i;
  }
  // Deterministic: same seed, same mutants.
  EXPECT_EQ(MutateCorpus(corpus, 11, 3, 100), out);
  // A different seed mutates differently (with overwhelming likelihood
  // over 6 mutants; equality would mean the Rng ignored the seed).
  EXPECT_NE(MutateCorpus(corpus, 12, 3, 100), out);
}

TEST(CorpusMutateTest, RespectsCapAndHandlesEmpty) {
  EXPECT_TRUE(MutateCorpus({}, 1, 5, 100).empty());
  const std::vector<std::vector<i64>> corpus = {{1}, {2}, {3}};
  EXPECT_EQ(MutateCorpus(corpus, 1, 5, 2).size(), 2u);
  const auto unmutated = MutateCorpus(corpus, 1, 0, 100);
  EXPECT_EQ(unmutated, corpus);
}

// ----- ReplayConfig::FromEnv -----

struct EnvGuard {
  ~EnvGuard() {
    for (const char* name : {"RETRACE_REPLAY_WORKERS", "RETRACE_REPLAY_SHARDS",
                             "RETRACE_REPLAY_PICK", "RETRACE_SOLVER_CACHE",
                             "RETRACE_REPLAY_PRUNE", "RETRACE_REPLAY_TRANSPORT",
                             "RETRACE_GOSSIP_INTERVAL_MS"}) {
      ::unsetenv(name);
    }
  }
};

TEST(ReplayConfigFromEnvTest, DefaultsWhenUnset) {
  EnvGuard guard;
  const ReplayConfig config = ReplayConfig::FromEnv();
  EXPECT_EQ(config.num_workers, 1u);
  EXPECT_EQ(config.num_shards, 1u);
  EXPECT_EQ(config.pick, ReplayConfig::Pick::kDfs);
  EXPECT_TRUE(config.solver_cache);
  EXPECT_FALSE(config.prune_subsumed);
  EXPECT_EQ(config.transport, ReplayTransport::kFork);
  EXPECT_EQ(config.gossip_interval_ms, 20);
}

TEST(ReplayConfigFromEnvTest, ReadsEveryKnob) {
  EnvGuard guard;
  ::setenv("RETRACE_REPLAY_WORKERS", "3", 1);
  ::setenv("RETRACE_REPLAY_SHARDS", "2,4", 1);  // Sweep list: first entry.
  ::setenv("RETRACE_REPLAY_PICK", "direction", 1);
  ::setenv("RETRACE_SOLVER_CACHE", "0", 1);
  ::setenv("RETRACE_REPLAY_PRUNE", "1", 1);
  ::setenv("RETRACE_REPLAY_TRANSPORT", "tcp", 1);
  ::setenv("RETRACE_GOSSIP_INTERVAL_MS", "50", 1);
  const ReplayConfig config = ReplayConfig::FromEnv();
  EXPECT_EQ(config.num_workers, 3u);
  EXPECT_EQ(config.num_shards, 2u);
  EXPECT_EQ(config.pick, ReplayConfig::Pick::kDirection);
  EXPECT_FALSE(config.solver_cache);
  EXPECT_TRUE(config.prune_subsumed);
  EXPECT_EQ(config.transport, ReplayTransport::kTcp);
  EXPECT_EQ(config.gossip_interval_ms, 50);
}

TEST(ReplayConfigFromEnvTest, GarbageKnobsFailLoudly) {
  EnvGuard guard;
  ::setenv("RETRACE_REPLAY_PICK", "fastest", 1);
  EXPECT_EXIT(ReplayConfig::FromEnv(), testing::ExitedWithCode(2), "RETRACE_REPLAY_PICK");
  ::unsetenv("RETRACE_REPLAY_PICK");
  ::setenv("RETRACE_REPLAY_TRANSPORT", "carrier-pigeon", 1);
  EXPECT_EXIT(ReplayConfig::FromEnv(), testing::ExitedWithCode(2), "RETRACE_REPLAY_TRANSPORT");
}

// ----- Pipeline misuse hardening -----

constexpr const char* kDecoyCrash = R"(
int main(int argc, char **argv) {
  if (argv[1][0] == 'x') { crash(99); }
  if (argv[1][1] == 'k') {
    if (argv[2][0] > '5') { crash(13); }
  }
  return 0;
}
)";

InputSpec DecoyCrashInput() {
  InputSpec spec;
  spec.argv = {"prog", "zk", "7"};
  spec.world.listen_fd = -1;
  return spec;
}

TEST(PipelineMisuseTest, ForeignPlanIsRejectedWithTypedError) {
  auto pipeline = MustBuild(kDecoyCrash);
  InstrumentationPlan foreign;
  foreign.branches = DenseBitset(999);  // Built for a different program.
  ASSERT_NE(pipeline->module().branches.size(), 999u);

  const auto user = pipeline->RecordUserRun(DecoyCrashInput(), foreign, {});
  ASSERT_FALSE(user.ok());
  EXPECT_NE(user.error().message.find("plan"), std::string::npos);
  EXPECT_NE(user.error().message.find("different program"), std::string::npos);

  BugReport report;
  EXPECT_FALSE(pipeline->Reproduce(report, foreign, ReplayConfig{}).ok());
  EXPECT_FALSE(pipeline->ReproduceAdaptive(report, foreign, {}).ok());
}

TEST(PlanInputsTest, ForMethodChecksRequiredResultsAtConstruction) {
  EXPECT_DEATH(PlanInputs::ForMethod(InstrumentMethod::kDynamic, nullptr, nullptr),
               "dynamic analysis result");
  StaticAnalysisResult stat;
  EXPECT_DEATH(PlanInputs::ForMethod(InstrumentMethod::kDynamicStatic, nullptr, &stat),
               "dynamic analysis result");
  EXPECT_DEATH(PlanInputs::ForMethod(InstrumentMethod::kStatic, nullptr, nullptr),
               "static analysis result");
}

// ----- The adaptive loop end-to-end -----

TEST(AdaptiveTest, ReproducingRoundZeroStopsImmediately) {
  auto pipeline = MustBuild(kDecoyCrash);
  const InstrumentationPlan plan = pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(DecoyCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  Pipeline::AdaptiveConfig config;
  config.user_spec = DecoyCrashInput();
  config.replay.max_runs = 2000;
  config.max_rounds = 3;
  const auto adaptive = pipeline->ReproduceAdaptive(user.report, plan, config);
  ASSERT_TRUE(adaptive.ok());
  EXPECT_TRUE(adaptive.value().reproduced);
  ASSERT_EQ(adaptive.value().rounds.size(), 1u);
  EXPECT_TRUE(adaptive.value().rounds[0].reproduced);
  EXPECT_EQ(adaptive.value().final_plan.detail_level, 0u);
}

TEST(AdaptiveTest, ConvergesHonestlyWhenTelemetryHasNoDeaths) {
  auto pipeline = MustBuild(kDecoyCrash);
  InstrumentationPlan blind;
  blind.method = InstrumentMethod::kDynamic;
  blind.branches = DenseBitset(pipeline->module().branches.size());
  const auto user = pipeline->RecordUserRun(DecoyCrashInput(), blind, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  Pipeline::AdaptiveConfig config;
  config.user_spec = DecoyCrashInput();
  config.replay.max_runs = 1;  // Only the log-following run: no flips, no deaths.
  config.max_rounds = 4;
  const auto adaptive = pipeline->ReproduceAdaptive(user.report, blind, config);
  ASSERT_TRUE(adaptive.ok());
  const Pipeline::AdaptiveResult& result = adaptive.value();
  EXPECT_FALSE(result.reproduced);
  EXPECT_TRUE(result.converged);
  ASSERT_EQ(result.rounds.size(), 1u);
  EXPECT_EQ(result.rounds[0].added_branches, 0u);
  EXPECT_EQ(result.final_plan.detail_level, 0u);
}

// The paper's story in miniature: a blind search wastes its budget
// flipping into a decoy crash; telemetry pins the deaths on the decoy
// branch; refinement logs it; the re-recorded log steers the next round
// around the decoy and the bug reproduces.
TEST(AdaptiveTest, RefinementUnblocksSearchBlockedByDecoyCrash) {
  auto pipeline = MustBuild(kDecoyCrash);
  InstrumentationPlan blind;
  blind.method = InstrumentMethod::kDynamic;
  blind.branches = DenseBitset(pipeline->module().branches.size());
  const auto user = pipeline->RecordUserRun(DecoyCrashInput(), blind, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  Pipeline::AdaptiveConfig config;
  config.user_spec = DecoyCrashInput();
  config.replay.max_runs = 2;  // Enough to die on the decoy, not to recover.
  config.replay.pick = ReplayConfig::Pick::kFifo;  // Oldest pending first.
  config.max_rounds = 3;
  const auto adaptive = pipeline->ReproduceAdaptive(user.report, blind, config);
  ASSERT_TRUE(adaptive.ok());
  const Pipeline::AdaptiveResult& result = adaptive.value();

  ASSERT_GE(result.rounds.size(), 2u);
  EXPECT_FALSE(result.rounds[0].reproduced);
  EXPECT_GE(result.rounds[0].added_branches, 1u);
  EXPECT_GE(result.final_plan.detail_level, 1u);
  EXPECT_NE(result.final_plan.provenance.find("+refine#1("), std::string::npos);
  EXPECT_GT(result.final_plan.NumInstrumented(), 0u);
  EXPECT_TRUE(result.reproduced) << "refined plan should dodge the decoy";
  EXPECT_TRUE(result.rounds.back().reproduced);
  // The refined rounds search under a strictly richer plan.
  EXPECT_GT(result.rounds.back().plan_branches, result.rounds[0].plan_branches);
}

TEST(AdaptiveTest, OverheadCeilingDropsAdditionsAndIsReported) {
  auto pipeline = MustBuild(kDecoyCrash);
  InstrumentationPlan blind;
  blind.method = InstrumentMethod::kDynamic;
  blind.branches = DenseBitset(pipeline->module().branches.size());
  const auto user = pipeline->RecordUserRun(DecoyCrashInput(), blind, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  Pipeline::AdaptiveConfig config;
  config.user_spec = DecoyCrashInput();
  config.replay.max_runs = 2;
  config.replay.pick = ReplayConfig::Pick::kFifo;
  config.max_rounds = 3;
  config.overhead_reps = 1;
  // An unreachable ceiling (any instrumented exec models above 100%):
  // every addition is dropped and the loop converges without refining.
  config.refine.max_overhead_percent = 100.0;
  const auto adaptive = pipeline->ReproduceAdaptive(user.report, blind, config);
  ASSERT_TRUE(adaptive.ok());
  const Pipeline::AdaptiveResult& result = adaptive.value();
  EXPECT_FALSE(result.reproduced);
  EXPECT_TRUE(result.converged);
  ASSERT_EQ(result.rounds.size(), 1u);
  EXPECT_GE(result.rounds[0].skipped_budget, 1u);
  EXPECT_EQ(result.rounds[0].added_branches, 0u);
  // The recorded prediction is for the accepted plan — with every
  // addition dropped, an uninstrumented run models exactly the native
  // baseline, which is what made it admissible under the ceiling.
  EXPECT_GT(result.rounds[0].predicted_overhead_percent, 0.0);
  EXPECT_LE(result.rounds[0].predicted_overhead_percent, 100.0);
  EXPECT_EQ(result.final_plan.detail_level, 0u);
}

}  // namespace
}  // namespace retrace
