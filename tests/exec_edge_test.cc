// Edge-case tests for the interpreter and language semantics.
#include <gtest/gtest.h>

#include "src/exec/interp.h"
#include "tests/testutil.h"

namespace retrace {
namespace {

class NullSyscalls : public SyscallHandler {
 public:
  SyscallOutcome OnSyscall(Builtin /*b*/, const std::vector<i64>& /*int_args*/,
                           const std::string& /*str_arg*/,
                           const std::vector<u8>& /*write_data*/) override {
    return SyscallOutcome{};
  }
};

RunResult RunSrc(std::string_view src, const std::vector<std::string>& argv = {"prog"}) {
  Compiled c = CompileOrDie(src);
  if (c.module == nullptr) {
    return RunResult{};
  }
  static NullSyscalls syscalls;
  Interp interp(*c.module, InterpOptions{});
  interp.set_syscall_handler(&syscalls);
  return interp.Run(argv, {});
}

TEST(ExecEdgeTest, ShiftSemantics) {
  EXPECT_EQ(RunSrc("int main() { return 1 << 62 >> 60; }").exit_code, 4);
  // Shift counts are masked to 6 bits (x86-style), keeping Eval total.
  EXPECT_EQ(RunSrc("int main() { int s = 64; return 3 << s; }").exit_code, 3);
  EXPECT_EQ(RunSrc("int main() { return -8 >> 1; }").exit_code, -4);  // Arithmetic shift.
}

TEST(ExecEdgeTest, NegativeDivisionTruncatesTowardZero) {
  EXPECT_EQ(RunSrc("int main() { return -7 / 2; }").exit_code, -3);
  EXPECT_EQ(RunSrc("int main() { return -7 % 2; }").exit_code, -1);
  EXPECT_EQ(RunSrc("int main() { return 7 / -2; }").exit_code, -3);
}

TEST(ExecEdgeTest, CharParamTruncatesAtCall) {
  EXPECT_EQ(RunSrc(R"(
    int get(char c) { return c; }
    int main() { return get(300); }
  )").exit_code,
            44);
}

TEST(ExecEdgeTest, CharReturnNotTruncatedWhenDeclaredInt) {
  EXPECT_EQ(RunSrc(R"(
    int pass(int v) { return v; }
    int main() { return pass(300); }
  )").exit_code,
            300);
}

TEST(ExecEdgeTest, LogicalOperatorsProduceValues) {
  EXPECT_EQ(RunSrc("int main() { int x = (3 && 0) + (0 || 7) * 2; return x; }").exit_code, 2);
  EXPECT_EQ(RunSrc("int main() { int a[2]; int *p = a; return (p && 1) + 1; }").exit_code, 2);
}

TEST(ExecEdgeTest, IncDecOnMemoryPlaces) {
  EXPECT_EQ(RunSrc(R"(
    int main() {
      int a[3];
      a[0] = 5;
      a[0]++;
      ++a[0];
      int *p = a;
      (*p)--;
      return a[0];
    }
  )").exit_code,
            6);
}

TEST(ExecEdgeTest, PointerCompoundAssignment) {
  EXPECT_EQ(RunSrc(R"(
    int main() {
      int a[10];
      for (int i = 0; i < 10; i++) { a[i] = i * 10; }
      int *p = a;
      p += 4;
      p -= 1;
      return *p;
    }
  )").exit_code,
            30);
}

TEST(ExecEdgeTest, PointerIncrementWalksString) {
  EXPECT_EQ(RunSrc(R"(
    int main() {
      char s[6];
      s[0] = 'a'; s[1] = 'b'; s[2] = 'c'; s[3] = 0;
      char *p = s;
      int n = 0;
      while (*p != 0) { n = n + *p; p++; }
      return n;
    }
  )").exit_code,
            'a' + 'b' + 'c');
}

TEST(ExecEdgeTest, GlobalScalarInitializers) {
  EXPECT_EQ(RunSrc(R"(
    int pos = 40;
    int neg = -2;
    char c = 'x';
    int main() { return pos + neg + (c == 'x'); }
  )").exit_code,
            39);
}

TEST(ExecEdgeTest, AddressTakenGlobalScalar) {
  EXPECT_EQ(RunSrc(R"(
    int g = 10;
    int bump(int *p, int by) { *p = *p + by; return *p; }
    int main() { bump(&g, 5); bump(&g, 7); return g; }
  )").exit_code,
            22);
}

TEST(ExecEdgeTest, ArgvOutOfBoundsCrashes) {
  // Reading argv[5] with argc == 2 is an out-of-bounds load on the argv
  // array object — the mknod bug pattern.
  const RunResult r = RunSrc(R"(
    int main(int argc, char **argv) { return argv[5][0]; }
  )",
                          {"prog", "x"});
  ASSERT_EQ(r.status, RunResult::Status::kCrash);
  EXPECT_EQ(r.crash.kind, CrashSite::Kind::kOutOfBounds);
}

TEST(ExecEdgeTest, StringLiteralsAreReadable) {
  EXPECT_EQ(RunSrc(R"(
    int main() {
      char *s = "hel\nlo";
      int n = 0;
      while (s[n] != 0) { n = n + 1; }
      return n * 10 + (s[3] == '\n');
    }
  )").exit_code,
            61);
}

TEST(ExecEdgeTest, NestedBreakContinue) {
  EXPECT_EQ(RunSrc(R"(
    int main() {
      int hits = 0;
      for (int i = 0; i < 5; i++) {
        for (int j = 0; j < 5; j++) {
          if (j > i) { break; }
          if (j % 2 == 1) { continue; }
          hits = hits + 1;
        }
      }
      return hits;
    }
  )").exit_code,
            9);
}

TEST(ExecEdgeTest, CrashSiteIdentityIsStable) {
  Compiled c = CompileOrDie(R"(
    int main(int argc, char **argv) {
      int a[2];
      if (argv[1][0] == 'x') { a[5] = 1; }
      a[7] = 2;
      return 0;
    }
  )");
  NullSyscalls syscalls;
  Interp interp(*c.module, InterpOptions{});
  interp.set_syscall_handler(&syscalls);
  const RunResult first = interp.Run({"prog", "x"}, {});
  const RunResult second = interp.Run({"prog", "y"}, {});
  ASSERT_TRUE(first.Crashed());
  ASSERT_TRUE(second.Crashed());
  // Different guarded stores -> different crash sites.
  EXPECT_FALSE(first.crash.SameSite(second.crash));
  // Same input -> same site.
  const RunResult again = interp.Run({"prog", "x"}, {});
  EXPECT_TRUE(first.crash.SameSite(again.crash));
}

TEST(ExecEdgeTest, VoidFunctionsAndEarlyReturns) {
  EXPECT_EQ(RunSrc(R"(
    int g = 0;
    void tick(int n) {
      if (n < 0) { return; }
      g = g + n;
    }
    int main() { tick(4); tick(-9); tick(3); return g; }
  )").exit_code,
            7);
}

TEST(ExecEdgeTest, RunStatsPopulated) {
  Compiled c = CompileOrDie(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 10; i++) { s += i; }
      print_int(s);
      return s;
    }
  )");
  NullSyscalls syscalls;
  Interp interp(*c.module, InterpOptions{});
  interp.set_syscall_handler(&syscalls);
  const RunResult r = interp.Run();
  EXPECT_EQ(r.stats.branch_execs, 11u);  // 10 iterations + exit test.
  EXPECT_GT(r.stats.instrs, 30u);
  EXPECT_EQ(r.stats.syscalls, 1u);
}

TEST(ExecEdgeTest, DeepRecursionWithinLimit) {
  EXPECT_EQ(RunSrc(R"(
    int depth(int n) { if (n == 0) { return 0; } return 1 + depth(n - 1); }
    int main() { return depth(200); }
  )").exit_code,
            200);
}

}  // namespace
}  // namespace retrace
