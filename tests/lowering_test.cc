#include <gtest/gtest.h>

#include "src/ir/printer.h"
#include "tests/testutil.h"

namespace retrace {
namespace {

TEST(LoweringTest, SimpleFunctionShape) {
  Compiled c = CompileOrDie("int main() { return 42; }");
  ASSERT_NE(c.module, nullptr);
  const IrFunction* main_fn = c.module->FindFunc("main");
  ASSERT_NE(main_fn, nullptr);
  ASSERT_FALSE(main_fn->blocks.empty());
  const Instr& last = main_fn->blocks[0].instrs.back();
  EXPECT_EQ(last.op, Opcode::kRet);
  EXPECT_EQ(last.a.imm, 42);
}

TEST(LoweringTest, IfCreatesOneBranchLocation) {
  Compiled c = CompileOrDie("int main(int argc, char **argv) { if (argc > 1) { return 1; } return 0; }");
  EXPECT_EQ(c.module->NumBranchLocations(), 1u);
}

TEST(LoweringTest, ShortCircuitCreatesTwoBranchLocations) {
  Compiled c = CompileOrDie(
      "int main(int argc, char **argv) { if (argc > 1 && argc < 5) { return 1; } return 0; }");
  EXPECT_EQ(c.module->NumBranchLocations(), 2u);
}

TEST(LoweringTest, LogicalNotAddsNoBranchLocation) {
  Compiled c = CompileOrDie(
      "int main(int argc, char **argv) { if (!(argc > 1)) { return 1; } return 0; }");
  EXPECT_EQ(c.module->NumBranchLocations(), 1u);
}

TEST(LoweringTest, WhileAndForEachOneBranch) {
  Compiled c = CompileOrDie(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 3; i = i + 1) { s = s + i; }
      while (s > 0) { s = s - 1; }
      return s;
    }
  )");
  EXPECT_EQ(c.module->NumBranchLocations(), 2u);
}

TEST(LoweringTest, LibraryBranchesTagged) {
  const std::string lib = "int helper(int x) { if (x > 0) { return 1; } return 0; }";
  Compiled c = CompileOrDie("int main() { return helper(3); }", {lib});
  ASSERT_EQ(c.module->NumBranchLocations(), 1u);
  EXPECT_TRUE(c.module->branches[0].is_library);
  EXPECT_EQ(c.module->NumAppBranchLocations(), 0u);
}

TEST(LoweringTest, StringLiteralsBecomeObjects) {
  Compiled c = CompileOrDie(R"(int main() { print_str("hi"); return 0; })");
  ASSERT_EQ(c.module->static_objects.size(), 1u);
  EXPECT_EQ(c.module->static_objects[0].size, 3);  // 'h','i',NUL.
  EXPECT_TRUE(c.module->static_objects[0].is_char);
}

TEST(LoweringTest, GlobalArraysAndScalars) {
  Compiled c = CompileOrDie(R"(
    int counter = 7;
    char buf[32];
    int main() { counter = counter + 1; buf[0] = 'x'; return counter; }
  )");
  ASSERT_EQ(c.module->global_scalars.size(), 1u);
  EXPECT_EQ(c.module->global_scalars[0].init, 7);
  ASSERT_EQ(c.module->static_objects.size(), 1u);
  EXPECT_EQ(c.module->static_objects[0].size, 32);
}

TEST(LoweringTest, AddressTakenLocalGetsFrameObject) {
  Compiled c = CompileOrDie(R"(
    int bump(int *p) { *p = *p + 1; return 0; }
    int main() { int x = 1; bump(&x); return x; }
  )");
  const IrFunction* main_fn = c.module->FindFunc("main");
  ASSERT_EQ(main_fn->frame_objects.size(), 1u);
  EXPECT_EQ(main_fn->frame_objects[0].size, 1);
}

TEST(LoweringTest, UnterminatedBlocksGetImplicitReturn) {
  Compiled c = CompileOrDie("int main() { int x = 1; }");
  const IrFunction* main_fn = c.module->FindFunc("main");
  const Instr& last = main_fn->blocks.back().instrs.back();
  // Either the entry block or a successor ends with ret 0.
  bool found_ret = false;
  for (const BasicBlock& block : main_fn->blocks) {
    for (const Instr& instr : block.instrs) {
      if (instr.op == Opcode::kRet) {
        found_ret = true;
      }
    }
  }
  EXPECT_TRUE(found_ret);
  (void)last;
}

TEST(LoweringTest, PrinterSmoke) {
  Compiled c = CompileOrDie(R"(
    int main(int argc, char **argv) {
      if (argc > 1 && argv[1][0] == 'x') { return 1; }
      return 0;
    }
  )");
  const std::string text = PrintModule(*c.module);
  EXPECT_NE(text.find("func main"), std::string::npos);
  EXPECT_NE(text.find("br"), std::string::npos);
  EXPECT_NE(text.find("branch locations"), std::string::npos);
}

TEST(LoweringTest, EveryBlockTerminated) {
  Compiled c = CompileOrDie(R"(
    int f(int x) {
      if (x > 0) { return 1; }
      else if (x < -10) { return 2; }
      for (int i = 0; i < x; i++) { if (i == 3) { break; } }
      return 0;
    }
    int main() { return f(5); }
  )");
  for (const IrFunction& fn : c.module->funcs) {
    for (const BasicBlock& block : fn.blocks) {
      if (block.instrs.empty()) {
        continue;  // Unreachable padding blocks are permitted to be empty
                   // only if nothing jumps to them; interp never sees them.
      }
      const Opcode op = block.instrs.back().op;
      const bool terminated =
          op == Opcode::kBr || op == Opcode::kJmp || op == Opcode::kRet;
      EXPECT_TRUE(terminated);
    }
  }
}

}  // namespace
}  // namespace retrace
