#include <gtest/gtest.h>

#include "src/lang/lexer.h"
#include "src/lang/parser.h"
#include "src/lang/sema.h"

namespace retrace {
namespace {

std::vector<Token> MustLex(std::string_view src) {
  Result<std::vector<Token>> r = Lex(src, 0);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().ToString());
  return r.take();
}

TEST(LexerTest, Keywords) {
  const auto tokens = MustLex("int char void if else while for return break continue");
  ASSERT_EQ(tokens.size(), 11u);  // + EOF
  EXPECT_EQ(tokens[0].kind, TokenKind::kKwInt);
  EXPECT_EQ(tokens[4].kind, TokenKind::kKwElse);
  EXPECT_EQ(tokens[9].kind, TokenKind::kKwContinue);
  EXPECT_EQ(tokens[10].kind, TokenKind::kEof);
}

TEST(LexerTest, OperatorsGreedy) {
  const auto tokens = MustLex("<= >= == != << >> && || ++ -- += -=");
  EXPECT_EQ(tokens[0].kind, TokenKind::kLe);
  EXPECT_EQ(tokens[1].kind, TokenKind::kGe);
  EXPECT_EQ(tokens[2].kind, TokenKind::kEq);
  EXPECT_EQ(tokens[3].kind, TokenKind::kNe);
  EXPECT_EQ(tokens[4].kind, TokenKind::kShl);
  EXPECT_EQ(tokens[5].kind, TokenKind::kShr);
  EXPECT_EQ(tokens[6].kind, TokenKind::kAmpAmp);
  EXPECT_EQ(tokens[7].kind, TokenKind::kPipePipe);
  EXPECT_EQ(tokens[8].kind, TokenKind::kPlusPlus);
  EXPECT_EQ(tokens[9].kind, TokenKind::kMinusMinus);
  EXPECT_EQ(tokens[10].kind, TokenKind::kPlusAssign);
  EXPECT_EQ(tokens[11].kind, TokenKind::kMinusAssign);
}

TEST(LexerTest, NumbersAndChars) {
  const auto tokens = MustLex("42 0x2A '\\n' 'a' '\\\\'");
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].int_value, 42);
  EXPECT_EQ(tokens[2].int_value, '\n');
  EXPECT_EQ(tokens[3].int_value, 'a');
  EXPECT_EQ(tokens[4].int_value, '\\');
}

TEST(LexerTest, StringEscapes) {
  const auto tokens = MustLex("\"a\\r\\n\\0b\"");
  ASSERT_EQ(tokens[0].kind, TokenKind::kStringLit);
  const std::string expected{'a', '\r', '\n', '\0', 'b'};
  EXPECT_EQ(tokens[0].text, expected);
}

TEST(LexerTest, CommentsSkipped) {
  const auto tokens = MustLex("a // line comment\n /* block\ncomment */ b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(LexerTest, ErrorOnBadChar) {
  Result<std::vector<Token>> r = Lex("int $x;", 0);
  EXPECT_FALSE(r.ok());
}

TEST(LexerTest, TracksLocations) {
  const auto tokens = MustLex("a\n  b");
  EXPECT_EQ(tokens[0].loc.line, 1);
  EXPECT_EQ(tokens[1].loc.line, 2);
  EXPECT_EQ(tokens[1].loc.col, 3);
}

std::unique_ptr<Unit> MustParse(std::string_view src) {
  Result<std::unique_ptr<Unit>> r = Parse(src, 0, false);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().ToString());
  return r.take();
}

TEST(ParserTest, FunctionAndGlobals) {
  auto unit = MustParse(R"(
    int g = 3;
    char buf[16];
    int add(int a, int b) { return a + b; }
  )");
  ASSERT_EQ(unit->globals.size(), 2u);
  EXPECT_EQ(unit->globals[0].name, "g");
  EXPECT_EQ(unit->globals[0].init_value, 3);
  EXPECT_TRUE(unit->globals[1].type.IsArray());
  ASSERT_EQ(unit->functions.size(), 1u);
  EXPECT_EQ(unit->functions[0]->params.size(), 2u);
}

TEST(ParserTest, PointerTypes) {
  auto unit = MustParse("int main(int argc, char **argv) { return 0; }");
  const Type t = unit->functions[0]->params[1].type;
  EXPECT_TRUE(t.IsPtr());
  EXPECT_EQ(t.ptr_depth, 2);
  EXPECT_EQ(t.base, TypeKind::kChar);
}

TEST(ParserTest, Precedence) {
  auto unit = MustParse("int f() { return 1 + 2 * 3 == 7; }");
  const Expr& ret = *unit->functions[0]->body->body[0]->cond;
  ASSERT_EQ(ret.kind, ExprKind::kBinary);
  EXPECT_EQ(ret.bin_op, BinaryOp::kEq);
  EXPECT_EQ(ret.lhs->bin_op, BinaryOp::kAdd);
  EXPECT_EQ(ret.lhs->rhs->bin_op, BinaryOp::kMul);
}

TEST(ParserTest, ControlFlow) {
  auto unit = MustParse(R"(
    int f(int n) {
      int s = 0;
      for (int i = 0; i < n; i = i + 1) {
        if (i % 2 == 0) { s += i; } else { continue; }
        while (s > 100) { s = s - 1; break; }
      }
      return s;
    }
  )");
  EXPECT_EQ(unit->functions.size(), 1u);
}

TEST(ParserTest, ErrorMissingSemicolon) {
  Result<std::unique_ptr<Unit>> r = Parse("int f() { return 1 }", 0, false);
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, ErrorBadTopLevel) {
  Result<std::unique_ptr<Unit>> r = Parse("banana;", 0, false);
  EXPECT_FALSE(r.ok());
}

std::unique_ptr<SemaProgram> MustAnalyze(std::string_view src) {
  std::vector<std::unique_ptr<Unit>> units;
  units.push_back(MustParse(src));
  Result<std::unique_ptr<SemaProgram>> r = Analyze(std::move(units));
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().ToString());
  return r.take();
}

Error MustFailAnalyze(std::string_view src) {
  auto parsed = Parse(src, 0, false);
  EXPECT_TRUE(parsed.ok());
  std::vector<std::unique_ptr<Unit>> units;
  units.push_back(parsed.take());
  Result<std::unique_ptr<SemaProgram>> r = Analyze(std::move(units));
  EXPECT_FALSE(r.ok());
  return r.ok() ? Error{} : r.error();
}

TEST(SemaTest, ResolvesBindings) {
  auto program = MustAnalyze(R"(
    int g = 1;
    int main() {
      int x = g + 2;
      return x;
    }
  )");
  EXPECT_EQ(program->main_index, 0);
  EXPECT_EQ(program->funcs[0].locals.size(), 1u);
}

TEST(SemaTest, AddressTakenPromotion) {
  auto program = MustAnalyze(R"(
    int bump(int *p) { *p = *p + 1; return *p; }
    int main() {
      int x = 5;
      bump(&x);
      return x;
    }
  )");
  EXPECT_TRUE(program->funcs[1].locals[0].address_taken);
}

TEST(SemaTest, RejectsUndefinedVariable) {
  MustFailAnalyze("int main() { return y; }");
}

TEST(SemaTest, RejectsUndefinedFunction) {
  MustFailAnalyze("int main() { return nope(); }");
}

TEST(SemaTest, RejectsBadAssignment) {
  MustFailAnalyze("int main() { int x; char *p = \"a\"; x = p; return 0; }");
}

TEST(SemaTest, RejectsBreakOutsideLoop) {
  MustFailAnalyze("int main() { break; return 0; }");
}

TEST(SemaTest, RejectsMissingMain) {
  MustFailAnalyze("int helper() { return 1; }");
}

TEST(SemaTest, RejectsVoidValue) {
  MustFailAnalyze("int main() { int x = print_int(1); return x; }");
}

TEST(SemaTest, StringLiteralsCollected) {
  auto program = MustAnalyze(R"(
    int main() { print_str("one"); print_str("two"); return 0; }
  )");
  EXPECT_EQ(program->strings.size(), 2u);
}

TEST(SemaTest, BuiltinArgCountChecked) {
  MustFailAnalyze("int main() { char b[4]; return read(0, b); }");
}

}  // namespace
}  // namespace retrace
