// Wire v7 tests: the standing-fleet job exchange (kJobBegin/kJobEnd),
// the service ingest codecs (kReportSubmit/kReportVerdict/kHealthStats),
// the structural report fingerprint behind crash clustering, and the
// shared-secret join token. Every decoder faces network bytes from a
// listening daemon, so each one gets the same hostile-input treatment as
// the older codecs: truncation sweeps, forged enums, absurd counts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/dist/wire.h"

namespace retrace {
namespace {

BugReport MakeReport(char salt) {
  BugReport report;
  report.method = InstrumentMethod::kDynamic;
  for (int i = 0; i < 17; ++i) {
    report.branch_log.PushBit(((i + salt) % 3) == 0);
  }
  report.has_syscall_log = true;
  report.syscall_log = {{Builtin::kRead, 13}, {Builtin::kPollSignal, 1}};
  report.crash.kind = CrashSite::Kind::kExplicit;
  report.crash.func = 2;
  report.crash.loc = SourceLoc{0, 5, 3};
  report.crash.code = 7;
  report.shape.argv = {"prog", std::string(1, salt), "7"};
  report.shape.argv_public = {false, true};
  report.shape.world.listen_fd = -1;
  return report;
}

WireJob MakeJob() {
  WireJob job;
  job.config.max_runs = 321;
  job.config.program.app = "int main() { return 0; }";
  job.report = MakeReport('a');
  return job;
}

// ----- Standing-fleet job exchange -----

TEST(DistWireV7Test, JobBeginRoundTripsByteExactly) {
  WireJobBegin begin;
  begin.job_id = 42;
  begin.job = MakeJob();
  WireWriter w;
  EncodeJobBegin(begin, &w);
  const std::vector<u8> payload = w.Take();

  WireReader r(payload.data(), payload.size());
  WireJobBegin decoded;
  ASSERT_TRUE(DecodeJobBegin(&r, &decoded));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(decoded.job_id, 42u);
  EXPECT_EQ(decoded.job.config.max_runs, 321u);
  EXPECT_EQ(decoded.job.config.program.app, begin.job.config.program.app);

  WireWriter w2;
  EncodeJobBegin(decoded, &w2);
  EXPECT_EQ(w2.buf(), payload);
}

TEST(DistWireV7Test, JobBeginRejectsTruncationEverywhere) {
  WireJobBegin begin;
  begin.job_id = 7;
  begin.job = MakeJob();
  WireWriter w;
  EncodeJobBegin(begin, &w);
  for (size_t cut = 0; cut < w.buf().size(); ++cut) {
    WireReader r(w.buf().data(), cut);
    WireJobBegin decoded;
    EXPECT_FALSE(DecodeJobBegin(&r, &decoded)) << "cut " << cut;
  }
}

TEST(DistWireV7Test, JobEndRoundTripsAndRejectsTruncation) {
  WireJobEnd end;
  end.jobs_served = 99;
  WireWriter w;
  EncodeJobEnd(end, &w);
  WireReader r(w.buf().data(), w.buf().size());
  WireJobEnd decoded;
  ASSERT_TRUE(DecodeJobEnd(&r, &decoded));
  EXPECT_EQ(decoded.jobs_served, 99u);

  for (size_t cut = 0; cut < w.buf().size(); ++cut) {
    WireReader rc(w.buf().data(), cut);
    EXPECT_FALSE(DecodeJobEnd(&rc, &decoded)) << "cut " << cut;
  }
}

// ----- Report fingerprint (crash clustering) -----

TEST(DistWireV7Test, FingerprintIsStableAcrossCopies) {
  const BugReport a = MakeReport('a');
  const BugReport b = MakeReport('a');  // Same crash, independently built.
  EXPECT_EQ(ReportFingerprint(a), ReportFingerprint(b));
}

TEST(DistWireV7Test, FingerprintSeparatesStructurallyDifferentReports) {
  const BugReport base = MakeReport('a');
  // A different argv shape is a different cluster.
  EXPECT_NE(ReportFingerprint(base), ReportFingerprint(MakeReport('b')));
  // So is one flipped branch-log bit.
  BugReport flipped = base;
  flipped.branch_log = BitVec();
  for (int i = 0; i < 17; ++i) {
    flipped.branch_log.PushBit(i == 0);
  }
  EXPECT_NE(ReportFingerprint(base), ReportFingerprint(flipped));
  // And a different crash site.
  BugReport moved = base;
  moved.crash.func = 3;
  EXPECT_NE(ReportFingerprint(base), ReportFingerprint(moved));
}

// ----- Service ingest: kReportSubmit -----

TEST(DistWireV7Test, ReportSubmitRoundTripsByteExactly) {
  WireReportSubmit submit;
  submit.tenant = "alice";
  submit.report = MakeReport('c');
  WireWriter w;
  EncodeReportSubmit(submit, &w);
  const std::vector<u8> payload = w.Take();

  WireReader r(payload.data(), payload.size());
  WireReportSubmit decoded;
  ASSERT_TRUE(DecodeReportSubmit(&r, &decoded));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(decoded.tenant, "alice");
  EXPECT_EQ(ReportFingerprint(decoded.report), ReportFingerprint(submit.report));

  WireWriter w2;
  EncodeReportSubmit(decoded, &w2);
  EXPECT_EQ(w2.buf(), payload);
}

TEST(DistWireV7Test, ReportSubmitRejectsHostileTenantAndTruncation) {
  WireReportSubmit hostile;
  hostile.tenant = std::string(100'000, 't');
  hostile.report = MakeReport('c');
  WireWriter w;
  EncodeReportSubmit(hostile, &w);
  WireReader r(w.buf().data(), w.buf().size());
  WireReportSubmit decoded;
  EXPECT_FALSE(DecodeReportSubmit(&r, &decoded));

  WireReportSubmit ok;
  ok.tenant = "bob";
  ok.report = MakeReport('d');
  WireWriter w2;
  EncodeReportSubmit(ok, &w2);
  for (size_t cut = 0; cut < w2.buf().size(); ++cut) {
    WireReader rc(w2.buf().data(), cut);
    EXPECT_FALSE(DecodeReportSubmit(&rc, &decoded)) << "cut " << cut;
  }
}

// ----- Service ingest: kReportVerdict -----

TEST(DistWireV7Test, ReportVerdictRoundTripsEveryOrigin) {
  for (const VerdictOrigin origin :
       {VerdictOrigin::kFresh, VerdictOrigin::kAttached, VerdictOrigin::kCached,
        VerdictOrigin::kRejected}) {
    WireReportVerdict verdict;
    verdict.cluster = 0xfeedfaceull;
    verdict.origin = static_cast<u8>(origin);
    verdict.result.result.reproduced = (origin != VerdictOrigin::kRejected);
    verdict.result.result.stats.runs = 55;
    WireWriter w;
    EncodeReportVerdict(verdict, &w);
    const std::vector<u8> payload = w.Take();

    WireReader r(payload.data(), payload.size());
    WireReportVerdict decoded;
    ASSERT_TRUE(DecodeReportVerdict(&r, &decoded));
    EXPECT_EQ(r.remaining(), 0u);
    EXPECT_EQ(decoded.cluster, verdict.cluster);
    EXPECT_EQ(decoded.origin, static_cast<u8>(origin));
    EXPECT_EQ(decoded.result.result.reproduced, verdict.result.result.reproduced);
    EXPECT_EQ(decoded.result.result.stats.runs, 55u);

    WireWriter w2;
    EncodeReportVerdict(decoded, &w2);
    EXPECT_EQ(w2.buf(), payload);
  }
}

TEST(DistWireV7Test, ReportVerdictRejectsForgedOriginByte) {
  WireReportVerdict verdict;
  verdict.cluster = 1;
  verdict.origin = static_cast<u8>(VerdictOrigin::kFresh);
  WireWriter w;
  EncodeReportVerdict(verdict, &w);
  std::vector<u8> payload = w.Take();
  // The origin byte sits right after the u64 cluster fingerprint.
  payload[8] = 4;  // One past kRejected: no such origin.
  WireReader r(payload.data(), payload.size());
  WireReportVerdict decoded;
  EXPECT_FALSE(DecodeReportVerdict(&r, &decoded));
}

// ----- Service ingest: kHealthStats -----

WireHealthStats MakeStats() {
  WireHealthStats stats;
  stats.reports_ingested = 10;
  stats.clusters = 3;
  stats.searches_run = 3;
  stats.duplicates_attached = 4;
  stats.cached_verdicts = 2;
  stats.rejected = 1;
  stats.queue_depth = 5;
  stats.in_flight = 1;
  stats.cache_sat_entries = 1234;
  stats.cache_unsat_entries = 567;
  stats.cache_evictions = 8;
  stats.snapshot_loaded = 1;
  stats.fleet_shards = 4;
  stats.fleet_live = 3;
  stats.fleet_jobs = 17;
  stats.rows = {{0xaaull, 2, 1, 6}, {0xbbull, 1, 0, 1}, {0xccull, 0, 0, 1}};
  return stats;
}

TEST(DistWireV7Test, HealthStatsRoundTripsByteExactly) {
  const WireHealthStats stats = MakeStats();
  WireWriter w;
  EncodeHealthStats(stats, &w);
  const std::vector<u8> payload = w.Take();

  WireReader r(payload.data(), payload.size());
  WireHealthStats decoded;
  ASSERT_TRUE(DecodeHealthStats(&r, &decoded));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(decoded.reports_ingested, 10u);
  EXPECT_EQ(decoded.duplicates_attached, 4u);
  EXPECT_EQ(decoded.cache_sat_entries, 1234u);
  EXPECT_EQ(decoded.snapshot_loaded, 1u);
  EXPECT_EQ(decoded.fleet_live, 3u);
  ASSERT_EQ(decoded.rows.size(), 3u);
  EXPECT_EQ(decoded.rows[0].fp, 0xaaull);
  EXPECT_EQ(decoded.rows[0].state, 2u);
  EXPECT_EQ(decoded.rows[0].reproduced, 1u);
  EXPECT_EQ(decoded.rows[0].reports, 6u);

  WireWriter w2;
  EncodeHealthStats(decoded, &w2);
  EXPECT_EQ(w2.buf(), payload);
}

TEST(DistWireV7Test, HealthStatsRejectsHostileRows) {
  // A row count past the protocol ceiling is refused before allocation.
  {
    WireHealthStats stats = MakeStats();
    stats.rows.clear();
    WireWriter w;
    EncodeHealthStats(stats, &w);
    std::vector<u8> payload = w.Take();
    // The row count is the last u32 of the payload (no rows follow).
    const size_t off = payload.size() - 4;
    payload[off] = 0xff;
    payload[off + 1] = 0xff;
    payload[off + 2] = 0xff;
    payload[off + 3] = 0x7f;
    WireReader r(payload.data(), payload.size());
    WireHealthStats decoded;
    EXPECT_FALSE(DecodeHealthStats(&r, &decoded));
  }
  // A forged cluster state byte (valid states are 0..2).
  {
    WireHealthStats stats = MakeStats();
    stats.rows = {{0x11ull, 3, 0, 1}};
    WireWriter w;
    EncodeHealthStats(stats, &w);
    WireReader r(w.buf().data(), w.buf().size());
    WireHealthStats decoded;
    EXPECT_FALSE(DecodeHealthStats(&r, &decoded));
  }
}

TEST(DistWireV7Test, HealthStatsRejectsTruncationEverywhere) {
  WireWriter w;
  EncodeHealthStats(MakeStats(), &w);
  for (size_t cut = 0; cut < w.buf().size(); ++cut) {
    WireReader r(w.buf().data(), cut);
    WireHealthStats decoded;
    EXPECT_FALSE(DecodeHealthStats(&r, &decoded)) << "cut " << cut;
  }
}

// ----- Shared-secret join token -----

TEST(DistWireV7Test, JoinTokenRoundTripsAndLengthIsCapped) {
  WireJoin join;
  join.ident = "shard-7/991";
  join.num_workers = 4;
  join.token = "fleet-secret";
  WireWriter w;
  EncodeJoin(join, &w);
  WireReader r(w.buf().data(), w.buf().size());
  WireJoin decoded;
  ASSERT_TRUE(DecodeJoin(&r, &decoded));
  EXPECT_EQ(decoded.token, "fleet-secret");

  WireJoin hostile = join;
  hostile.token = std::string(100'000, 's');
  WireWriter w2;
  EncodeJoin(hostile, &w2);
  WireReader r2(w2.buf().data(), w2.buf().size());
  EXPECT_FALSE(DecodeJoin(&r2, &decoded));
}

TEST(DistWireV7Test, AuthTokenNeverRidesTheJob) {
  // The token authenticates the channel at join time; a shipped job must
  // never leak the coordinator's secret to the remote process beyond the
  // handshake it already passed.
  WireJob job = MakeJob();
  job.config.shard_token = "super-secret";
  WireWriter w;
  EncodeJob(job, &w);
  WireReader r(w.buf().data(), w.buf().size());
  WireJob decoded;
  ASSERT_TRUE(DecodeJob(&r, &decoded));
  EXPECT_TRUE(decoded.config.shard_token.empty());
  // Same for the coordinator's shard endpoint list.
  EXPECT_TRUE(decoded.config.shard_endpoints.empty());
}

}  // namespace
}  // namespace retrace
