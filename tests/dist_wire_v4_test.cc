// Wire v4 codec tests: the off-log failure profile nested in every
// stats payload, and the plan detail_level/provenance metadata added to
// the kJob codec. Same rigor as the v3 suite (tests/dist_wire_test.cc):
// byte-exact and randomized round trips, every-prefix truncation,
// digest corruption, and hostile-shape rejection.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/dist/wire.h"
#include "src/support/rng.h"

namespace retrace {
namespace {

ReplayFailureProfile MakeProfile() {
  ReplayFailureProfile profile;
  profile.branches.push_back(BranchFailureCounts{3, 7, 0, 1, 120});
  profile.branches.push_back(BranchFailureCounts{4, 0, 11, 0, 95});
  profile.branches.push_back(BranchFailureCounts{90, 1, 2, 3, 4});
  profile.deaths_unattributed = 13;
  return profile;
}

std::vector<u8> EncodeProfilePayload(const ReplayFailureProfile& profile) {
  WireWriter w;
  EncodeFailureProfile(profile, &w);
  return w.Take();
}

TEST(DistWireV4Test, FailureProfileRoundTripsByteExactly) {
  const ReplayFailureProfile original = MakeProfile();
  const std::vector<u8> payload = EncodeProfilePayload(original);

  WireReader r(payload.data(), payload.size());
  ReplayFailureProfile decoded;
  ASSERT_TRUE(DecodeFailureProfile(&r, &decoded));
  EXPECT_EQ(r.remaining(), 0u);

  ASSERT_EQ(decoded.branches.size(), 3u);
  EXPECT_EQ(decoded.branches[0].branch_id, 3u);
  EXPECT_EQ(decoded.branches[0].deaths_concrete, 7u);
  EXPECT_EQ(decoded.branches[0].deaths_wrong_crash, 1u);
  EXPECT_EQ(decoded.branches[0].blind_execs, 120u);
  EXPECT_EQ(decoded.branches[1].deaths_exhausted, 11u);
  EXPECT_EQ(decoded.branches[2].branch_id, 90u);
  EXPECT_EQ(decoded.deaths_unattributed, 13u);

  EXPECT_EQ(EncodeProfilePayload(decoded), payload);
}

TEST(DistWireV4Test, FailureProfileEmptyIsLegal) {
  const std::vector<u8> payload = EncodeProfilePayload(ReplayFailureProfile{});
  WireReader r(payload.data(), payload.size());
  ReplayFailureProfile decoded;
  ASSERT_TRUE(DecodeFailureProfile(&r, &decoded));
  EXPECT_TRUE(decoded.Empty());
  EXPECT_EQ(r.remaining(), 0u);
}

// Randomized sweep: any strictly-increasing id sequence with arbitrary
// 64-bit counters survives encode -> decode -> encode byte-exactly.
TEST(DistWireV4Test, FailureProfileRoundTripProperty) {
  Rng rng(4242);
  for (int iter = 0; iter < 100; ++iter) {
    ReplayFailureProfile profile;
    u32 id = 0;
    const size_t count = rng.Next() % 20;
    for (size_t i = 0; i < count; ++i) {
      id += 1 + static_cast<u32>(rng.Next() % 1000);
      profile.branches.push_back(BranchFailureCounts{id, rng.Next(), rng.Next(), rng.Next(),
                                                     rng.Next()});
    }
    profile.deaths_unattributed = rng.Next();

    const std::vector<u8> payload = EncodeProfilePayload(profile);
    WireReader r(payload.data(), payload.size());
    ReplayFailureProfile decoded;
    ASSERT_TRUE(DecodeFailureProfile(&r, &decoded)) << "iter " << iter;
    EXPECT_EQ(r.remaining(), 0u) << "iter " << iter;
    EXPECT_EQ(EncodeProfilePayload(decoded), payload) << "iter " << iter;
  }
}

TEST(DistWireV4Test, FailureProfileRejectsEveryTruncatedPrefix) {
  const std::vector<u8> payload = EncodeProfilePayload(MakeProfile());
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    WireReader r(payload.data(), cut);
    ReplayFailureProfile decoded;
    EXPECT_FALSE(DecodeFailureProfile(&r, &decoded)) << "cut " << cut;
  }
}

TEST(DistWireV4Test, FailureProfileRejectsForgedCounts) {
  // A count far past the payload size: refused before any allocation.
  WireWriter absurd;
  absurd.U32(0x7fffffff);
  WireReader r(absurd.buf().data(), absurd.buf().size());
  ReplayFailureProfile decoded;
  EXPECT_FALSE(DecodeFailureProfile(&r, &decoded));
}

TEST(DistWireV4Test, FailureProfileRejectsBranchIdsPastTheJobCap) {
  // branch_id must stay below the job branch cap (1 << 24): a forged id
  // would index far outside any real module.
  WireWriter w;
  w.U32(1);
  w.U32(1u << 24);
  w.U64(1);
  w.U64(0);
  w.U64(0);
  w.U64(0);
  w.U64(0);  // deaths_unattributed
  WireReader r(w.buf().data(), w.buf().size());
  ReplayFailureProfile decoded;
  EXPECT_FALSE(DecodeFailureProfile(&r, &decoded));
}

TEST(DistWireV4Test, FailureProfileRejectsNonIncreasingIds) {
  for (const u32 second_id : {5u, 3u}) {  // Duplicate and decreasing.
    WireWriter w;
    w.U32(2);
    w.U32(5);
    w.U64(1);
    w.U64(0);
    w.U64(0);
    w.U64(9);
    w.U32(second_id);
    w.U64(0);
    w.U64(2);
    w.U64(0);
    w.U64(9);
    w.U64(0);  // deaths_unattributed
    WireReader r(w.buf().data(), w.buf().size());
    ReplayFailureProfile decoded;
    EXPECT_FALSE(DecodeFailureProfile(&r, &decoded)) << "second id " << second_id;
  }
}

// The profile rides inside every shard-result stats payload: the whole
// nested codec must round trip byte-exactly, and a flipped payload bit
// must die at the framing digest before the decoder sees it.
TEST(DistWireV4Test, ShardResultCarriesFailureProfile) {
  WireShardResult shard;
  shard.result.reproduced = false;
  shard.result.budget_exhausted = true;
  shard.result.stats.runs = 500;
  shard.result.stats.aborts_forced_direction = 5;
  shard.result.stats.failure_profile = MakeProfile();

  WireWriter w;
  EncodeShardResult(shard, &w);
  const std::vector<u8> payload = w.Take();

  WireReader r(payload.data(), payload.size());
  WireShardResult decoded;
  ASSERT_TRUE(DecodeShardResult(&r, &decoded));
  EXPECT_EQ(r.remaining(), 0u);
  ASSERT_EQ(decoded.result.stats.failure_profile.branches.size(), 3u);
  EXPECT_EQ(decoded.result.stats.failure_profile.TotalDeaths(),
            shard.result.stats.failure_profile.TotalDeaths());
  EXPECT_EQ(decoded.result.stats.failure_profile.deaths_unattributed, 13u);

  WireWriter w2;
  EncodeShardResult(decoded, &w2);
  EXPECT_EQ(w2.buf(), payload);

  for (size_t cut = 0; cut < payload.size(); ++cut) {
    WireReader tr(payload.data(), cut);
    WireShardResult truncated;
    EXPECT_FALSE(DecodeShardResult(&tr, &truncated)) << "cut " << cut;
  }

  std::vector<u8> stream;
  AppendFrame(WireMsg::kResult, payload, &stream);
  stream[stream.size() - 9] ^= 0x10;  // Inside the profile bytes.
  FrameParser parser;
  parser.Append(stream.data(), stream.size());
  WireFrame frame;
  EXPECT_EQ(parser.Next(&frame), FrameStatus::kCorrupt);
}

// ----- Plan metadata (detail_level / provenance) in the kJob codec -----

WireJob MakeJobWithRefinedPlan() {
  WireJob job;
  job.config.max_runs = 100;
  job.config.seed = 5;
  job.plan.method = InstrumentMethod::kDynamic;
  job.plan.branches = DenseBitset(16);
  job.plan.branches.Set(2);
  job.plan.branches.Set(7);
  job.plan.detail_level = 2;
  job.plan.provenance = "dynamic +refine#1(4) +refine#2(2)";
  job.report.method = InstrumentMethod::kDynamic;
  for (int i = 0; i < 9; ++i) {
    job.report.branch_log.PushBit((i & 1) != 0);
  }
  job.report.crash.kind = CrashSite::Kind::kExplicit;
  job.report.crash.func = 1;
  job.report.crash.loc = SourceLoc{0, 3, 2};
  job.report.shape.argv = {"prog", "x"};
  job.report.shape.argv_public = {false};
  return job;
}

std::vector<u8> EncodeJobPayload(const WireJob& job) {
  WireWriter w;
  EncodeJob(job, &w);
  return w.Take();
}

TEST(DistWireV4Test, JobPlanMetadataRoundTripsByteExactly) {
  const WireJob job = MakeJobWithRefinedPlan();
  const std::vector<u8> payload = EncodeJobPayload(job);

  WireReader r(payload.data(), payload.size());
  WireJob decoded;
  ASSERT_TRUE(DecodeJob(&r, &decoded));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(decoded.plan.detail_level, 2u);
  EXPECT_EQ(decoded.plan.provenance, job.plan.provenance);
  EXPECT_EQ(decoded.plan.branches, job.plan.branches);
  EXPECT_EQ(EncodeJobPayload(decoded), payload);
}

TEST(DistWireV4Test, JobPlanMetadataRejectsEveryTruncatedPrefix) {
  const std::vector<u8> payload = EncodeJobPayload(MakeJobWithRefinedPlan());
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    WireReader r(payload.data(), cut);
    WireJob decoded;
    EXPECT_FALSE(DecodeJob(&r, &decoded)) << "cut " << cut;
  }
}

TEST(DistWireV4Test, JobRejectsHostilePlanMetadata) {
  // A provenance string past the cap (it is diagnostic text, not a
  // payload channel).
  {
    WireJob job = MakeJobWithRefinedPlan();
    job.plan.provenance = std::string(100'000, 'p');
    const std::vector<u8> payload = EncodeJobPayload(job);
    WireReader r(payload.data(), payload.size());
    WireJob decoded;
    EXPECT_FALSE(DecodeJob(&r, &decoded));
  }
  // A detail level past the job branch cap: no real refinement loop can
  // add more rounds than there are branches.
  {
    WireJob job = MakeJobWithRefinedPlan();
    job.plan.detail_level = (1u << 24) + 1;
    const std::vector<u8> payload = EncodeJobPayload(job);
    WireReader r(payload.data(), payload.size());
    WireJob decoded;
    EXPECT_FALSE(DecodeJob(&r, &decoded));
  }
}

}  // namespace
}  // namespace retrace
