#include <gtest/gtest.h>

#include "src/exec/interp.h"
#include "tests/testutil.h"

namespace retrace {
namespace {

// Minimal scripted handler: read() feeds from a byte string, everything
// else returns canned values; output is captured.
class ScriptedSyscalls : public SyscallHandler {
 public:
  explicit ScriptedSyscalls(std::string input = "") : input_(std::move(input)) {}

  SyscallOutcome OnSyscall(Builtin b, const std::vector<i64>& int_args,
                           const std::string& str_arg,
                           const std::vector<u8>& write_data) override {
    SyscallOutcome out;
    switch (b) {
      case Builtin::kRead: {
        const i64 want = int_args[1];
        const i64 have = static_cast<i64>(input_.size()) - cursor_;
        const i64 n = std::min(want, have);
        for (i64 i = 0; i < n; ++i) {
          out.data.push_back(static_cast<u8>(input_[cursor_ + i]));
        }
        cursor_ += n;
        out.ret = n;
        break;
      }
      case Builtin::kWrite:
        written_.append(write_data.begin(), write_data.end());
        out.ret = static_cast<i64>(write_data.size());
        break;
      case Builtin::kPrintInt:
        printed_ += std::to_string(int_args[0]);
        break;
      case Builtin::kPrintStr:
        printed_ += str_arg;
        break;
      case Builtin::kOpen:
        out.ret = 5;
        break;
      default:
        out.ret = 0;
        break;
    }
    return out;
  }

  const std::string& printed() const { return printed_; }
  const std::string& written() const { return written_; }

 private:
  std::string input_;
  i64 cursor_ = 0;
  std::string printed_;
  std::string written_;
};

RunResult RunProgram(std::string_view src, const std::vector<std::string>& argv = {"prog"},
                     ScriptedSyscalls* syscalls = nullptr) {
  Compiled c = CompileOrDie(src);
  if (c.module == nullptr) {
    return RunResult{};
  }
  Interp interp(*c.module, InterpOptions{});
  static ScriptedSyscalls fallback;
  interp.set_syscall_handler(syscalls != nullptr ? syscalls : &fallback);
  return interp.Run(argv, {});
}

TEST(InterpTest, Arithmetic) {
  EXPECT_EQ(RunProgram("int main() { return (3 + 4) * 2 - 10 / 5; }").exit_code, 12);
  EXPECT_EQ(RunProgram("int main() { return 17 % 5; }").exit_code, 2);
  EXPECT_EQ(RunProgram("int main() { return 1 << 6; }").exit_code, 64);
  EXPECT_EQ(RunProgram("int main() { return -7; }").exit_code, -7);
  EXPECT_EQ(RunProgram("int main() { return ~0; }").exit_code, -1);
  EXPECT_EQ(RunProgram("int main() { return !5; }").exit_code, 0);
  EXPECT_EQ(RunProgram("int main() { return (6 & 3) | (4 ^ 1); }").exit_code, 7);
}

TEST(InterpTest, Comparisons) {
  EXPECT_EQ(RunProgram("int main() { return (1 < 2) + (2 <= 2) + (3 > 2) + (3 >= 4); }").exit_code,
            3);
  EXPECT_EQ(RunProgram("int main() { return (1 == 1) + (1 != 1); }").exit_code, 1);
}

TEST(InterpTest, ShortCircuit) {
  // Division by zero on the right side must not execute.
  EXPECT_EQ(RunProgram("int main() { int z = 0; if (z != 0 && 10 / z > 0) { return 1; } return 2; }")
                .exit_code,
            2);
  EXPECT_EQ(RunProgram("int main() { int z = 1; if (z || 10 / 0) { return 3; } return 4; }")
                .exit_code,
            3);
}

TEST(InterpTest, LoopsAndLocals) {
  EXPECT_EQ(RunProgram(R"(
    int main() {
      int s = 0;
      for (int i = 1; i <= 10; i = i + 1) { s = s + i; }
      return s;
    }
  )").exit_code,
            55);
  EXPECT_EQ(RunProgram(R"(
    int main() {
      int n = 0;
      while (1) { n = n + 1; if (n == 7) { break; } }
      return n;
    }
  )").exit_code,
            7);
  EXPECT_EQ(RunProgram(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 10; i = i + 1) { if (i % 2) { continue; } s = s + i; }
      return s;
    }
  )").exit_code,
            20);
}

TEST(InterpTest, IncDecAndCompound) {
  EXPECT_EQ(RunProgram("int main() { int x = 5; x += 3; x -= 1; x *= 2; return x; }").exit_code,
            14);
  EXPECT_EQ(RunProgram("int main() { int x = 5; int y = x++; return x * 10 + y; }").exit_code, 65);
  EXPECT_EQ(RunProgram("int main() { int x = 5; int y = ++x; return x * 10 + y; }").exit_code, 66);
  EXPECT_EQ(RunProgram("int main() { int x = 5; int y = x--; return x * 10 + y; }").exit_code, 45);
}

TEST(InterpTest, FunctionsAndRecursion) {
  EXPECT_EQ(RunProgram(R"(
    int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
    int main() { return fib(12); }
  )").exit_code,
            144);
}

TEST(InterpTest, ArraysAndPointers) {
  EXPECT_EQ(RunProgram(R"(
    int main() {
      int a[5];
      for (int i = 0; i < 5; i = i + 1) { a[i] = i * i; }
      int *p = a;
      return p[4] + *p + a[2];
    }
  )").exit_code,
            20);
  EXPECT_EQ(RunProgram(R"(
    int swap(int *x, int *y) { int t = *x; *x = *y; *y = t; return 0; }
    int main() { int a = 1; int b = 9; swap(&a, &b); return a * 10 + b; }
  )").exit_code,
            91);
  EXPECT_EQ(RunProgram(R"(
    int main() {
      char s[8];
      s[0] = 'h'; s[1] = 'i'; s[2] = 0;
      char *p = s;
      p = p + 1;
      return *p;
    }
  )").exit_code,
            'i');
}

TEST(InterpTest, PointerDifferenceAndComparison) {
  EXPECT_EQ(RunProgram(R"(
    int main() {
      int a[10];
      int *p = &a[7];
      int *q = &a[2];
      if (p > q) { return p - q; }
      return -1;
    }
  )").exit_code,
            5);
}

TEST(InterpTest, CharTruncation) {
  EXPECT_EQ(RunProgram("int main() { char c = 300; return c; }").exit_code, 44);
  EXPECT_EQ(RunProgram(R"(
    int main() { char b[2]; b[0] = 257; return b[0]; }
  )").exit_code,
            1);
}

TEST(InterpTest, GlobalState) {
  EXPECT_EQ(RunProgram(R"(
    int counter = 10;
    int buf[4];
    int bump() { counter = counter + 1; return counter; }
    int main() { bump(); bump(); buf[1] = counter; return buf[1]; }
  )").exit_code,
            12);
}

TEST(InterpTest, ArgvAccess) {
  EXPECT_EQ(RunProgram(R"(
    int main(int argc, char **argv) {
      if (argc != 3) { return -1; }
      return argv[1][0] * 100 + argv[2][1];
    }
  )",
                       {"prog", "a", "xy"})
                .exit_code,
            'a' * 100 + 'y');
}

TEST(InterpTest, TrapOutOfBounds) {
  const RunResult r = RunProgram("int main() { int a[3]; a[3] = 1; return 0; }");
  ASSERT_EQ(r.status, RunResult::Status::kCrash);
  EXPECT_EQ(r.crash.kind, CrashSite::Kind::kOutOfBounds);
}

TEST(InterpTest, TrapNegativeIndex) {
  const RunResult r = RunProgram("int main() { int a[3]; int i = -1; return a[i]; }");
  ASSERT_EQ(r.status, RunResult::Status::kCrash);
  EXPECT_EQ(r.crash.kind, CrashSite::Kind::kOutOfBounds);
}

TEST(InterpTest, TrapDivByZero) {
  const RunResult r = RunProgram("int main() { int z = 0; return 5 / z; }");
  ASSERT_EQ(r.status, RunResult::Status::kCrash);
  EXPECT_EQ(r.crash.kind, CrashSite::Kind::kDivByZero);
}

TEST(InterpTest, TrapNullDeref) {
  const RunResult r = RunProgram("int main() { int *p = 0; return *p; }");
  ASSERT_EQ(r.status, RunResult::Status::kCrash);
  EXPECT_EQ(r.crash.kind, CrashSite::Kind::kNullDeref);
}

TEST(InterpTest, TrapStackOverflow) {
  const RunResult r = RunProgram("int f(int n) { return f(n + 1); } int main() { return f(0); }");
  ASSERT_EQ(r.status, RunResult::Status::kCrash);
  EXPECT_EQ(r.crash.kind, CrashSite::Kind::kStackOverflow);
}

TEST(InterpTest, ExplicitCrashCarriesCode) {
  const RunResult r = RunProgram("int main() { crash(42); return 0; }");
  ASSERT_EQ(r.status, RunResult::Status::kCrash);
  EXPECT_EQ(r.crash.kind, CrashSite::Kind::kExplicit);
  EXPECT_EQ(r.crash.code, 42);
}

TEST(InterpTest, ExitBuiltin) {
  const RunResult r = RunProgram("int main() { exit(9); return 0; }");
  EXPECT_EQ(r.status, RunResult::Status::kExit);
  EXPECT_EQ(r.exit_code, 9);
}

TEST(InterpTest, BudgetExhaustion) {
  Compiled c = CompileOrDie("int main() { while (1) { } return 0; }");
  InterpOptions options;
  options.max_steps = 1000;
  Interp interp(*c.module, options);
  ScriptedSyscalls syscalls;
  interp.set_syscall_handler(&syscalls);
  const RunResult r = interp.Run({"prog"}, {});
  EXPECT_EQ(r.status, RunResult::Status::kBudget);
}

TEST(InterpTest, ReadAndPrint) {
  ScriptedSyscalls syscalls("hello");
  const RunResult r = RunProgram(R"(
    int main() {
      char buf[16];
      int n = read(0, buf, 15);
      buf[n] = 0;
      print_str(buf);
      print_int(n);
      return n;
    }
  )",
                                 {"prog"}, &syscalls);
  EXPECT_EQ(r.exit_code, 5);
  EXPECT_EQ(syscalls.printed(), "hello5");
}

TEST(InterpTest, WriteExtractsBuffer) {
  ScriptedSyscalls syscalls;
  const RunResult r = RunProgram(R"(
    int main() {
      char buf[4];
      buf[0] = 'a'; buf[1] = 'b'; buf[2] = 'c';
      return write(1, buf, 3);
    }
  )",
                                 {"prog"}, &syscalls);
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_EQ(syscalls.written(), "abc");
}

TEST(InterpTest, DanglingFramePointerTrap) {
  const RunResult r = RunProgram(R"(
    int g_save = 0;
    int *leak() { int x = 3; int *p = &x; return p; }
    int main() { int *p = leak(); return *p; }
  )");
  ASSERT_EQ(r.status, RunResult::Status::kCrash);
  EXPECT_EQ(r.crash.kind, CrashSite::Kind::kDangling);
}

}  // namespace
}  // namespace retrace
