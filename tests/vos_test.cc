#include <gtest/gtest.h>

#include "src/concolic/cellrun.h"
#include "src/instrument/syscall_log.h"
#include "tests/testutil.h"

namespace retrace {
namespace {

InputSpec SpecWithStdin(std::string_view data, i64 chunk = -1) {
  InputSpec spec;
  spec.argv = {"prog"};
  spec.world.listen_fd = -1;
  spec.world.stdin_stream = 0;
  StreamShape stream;
  stream.name = "stdin";
  stream.bytes.assign(data.begin(), data.end());
  stream.length = static_cast<i64>(stream.bytes.size());
  stream.chunk = chunk;
  spec.world.streams.push_back(stream);
  return spec;
}

TEST(VosTest, CellLayoutArgvAndStreams) {
  InputSpec spec;
  spec.argv = {"prog", "ab", "c"};
  spec.world.streams.push_back(StreamShape{"s", {'x', 'y'}, 2, -1});
  const CellLayout layout = CellLayout::Build(spec);
  // "ab" + NUL, "c" + NUL, two stream bytes.
  EXPECT_EQ(layout.num_static(), 7);
  EXPECT_EQ(layout.ArgByteCell(0, 0), -1);  // argv[0] is not symbolic.
  EXPECT_EQ(layout.ArgByteCell(1, 1), 1);
  EXPECT_EQ(layout.ArgByteCell(1, 2), 2);  // NUL cell, domain {0,0}.
  EXPECT_EQ(layout.ArgByteCell(2, 0), 3);
  EXPECT_EQ(layout.StreamByteCell(0, 1), 6);
  EXPECT_EQ(layout.defaults()[0], 'a');
  EXPECT_EQ(layout.defaults()[2], 0);
  EXPECT_EQ(layout.domains()[2], (Interval{0, 0}));
  EXPECT_EQ(layout.defaults()[6], 'y');
}

TEST(VosTest, MaterializeArgvAppliesModel) {
  InputSpec spec;
  spec.argv = {"prog", "ab"};
  const CellLayout layout = CellLayout::Build(spec);
  std::vector<i64> values = layout.defaults();
  values[0] = 'Z';
  const auto argv = layout.MaterializeArgv(spec, values);
  ASSERT_EQ(argv.size(), 2u);
  EXPECT_EQ(argv[1], "Zb");
}

TEST(VosTest, StdinReadDeliversBytes) {
  Compiled c = CompileOrDie(R"(
    int main() {
      char buf[16];
      int n = read(0, buf, 15);
      if (n < 0) { return -1; }
      buf[n] = 0;
      print_str(buf);
      return n;
    }
  )");
  CellRunner runner(*c.module, SpecWithStdin("hello"));
  const CellRunOutput out = runner.Run(CellRunConfig{});
  EXPECT_EQ(out.result.exit_code, 5);
  EXPECT_EQ(out.stdout_text, "hello");
}

TEST(VosTest, ChunkedReadsArePartial) {
  Compiled c = CompileOrDie(R"(
    int main() {
      char buf[32];
      int total = 0;
      int reads = 0;
      int r = read(0, buf, 31);
      while (r > 0) {
        total = total + r;
        reads = reads + 1;
        r = read(0, &buf[total], 31 - total);
      }
      return reads * 100 + total;
    }
  )");
  CellRunner runner(*c.module, SpecWithStdin("0123456789", /*chunk=*/4));
  const CellRunOutput out = runner.Run(CellRunConfig{});
  // 4 + 4 + 2 bytes over three reads.
  EXPECT_EQ(out.result.exit_code, 310);
}

TEST(VosTest, OpenMissingFileFails) {
  Compiled c = CompileOrDie(R"(
    int main() { return open("nope.txt", 0); }
  )");
  InputSpec spec;
  spec.argv = {"prog"};
  spec.world.listen_fd = -1;
  CellRunner runner(*c.module, spec);
  const CellRunOutput out = runner.Run(CellRunConfig{});
  EXPECT_EQ(out.result.exit_code, -1);
}

TEST(VosTest, FileOpenReadClose) {
  Compiled c = CompileOrDie(R"(
    int main() {
      int fd = open("data.txt", 0);
      if (fd < 0) { return -1; }
      char buf[8];
      int n = read(fd, buf, 7);
      close(fd);
      return n * 10 + buf[0] - '0';
    }
  )");
  InputSpec spec;
  spec.argv = {"prog"};
  spec.world.listen_fd = -1;
  spec.world.files.emplace_back("data.txt", 0);
  spec.world.streams.push_back(StreamShape{"data.txt", {'7', '8'}, 2, -1});
  CellRunner runner(*c.module, spec);
  const CellRunOutput out = runner.Run(CellRunConfig{});
  EXPECT_EQ(out.result.exit_code, 27);
}

TEST(VosTest, AcceptSelectConnectionFlow) {
  Compiled c = CompileOrDie(R"(
    int main() {
      int fds[2];
      fds[0] = 3;
      int got = 0;
      int loops = 0;
      char buf[32];
      int conn = -1;
      while (loops < 20) {
        loops = loops + 1;
        int n = 1;
        if (conn >= 0) { fds[1] = conn; n = 2; }
        int ready = select_fd(fds, n);
        if (ready < 0) { continue; }
        if (fds[ready] == 3) {
          conn = accept_conn(3);
          continue;
        }
        int r = read(conn, buf, 31);
        if (r > 0) { got = got + r; }
        if (r <= 0) { close(conn); break; }
      }
      return got;
    }
  )");
  InputSpec spec;
  spec.argv = {"prog"};
  spec.world.listen_fd = 3;
  spec.world.connection_streams.push_back(0);
  spec.world.streams.push_back(StreamShape{"conn", {'p', 'i', 'n', 'g'}, 4, -1});
  CellRunner runner(*c.module, spec);
  const CellRunOutput out = runner.Run(CellRunConfig{});
  EXPECT_EQ(out.result.exit_code, 4);
}

TEST(VosTest, SignalPolicyDelivers) {
  Compiled c = CompileOrDie(R"(
    int main() {
      int polls = 0;
      while (polls < 100) {
        if (poll_signal()) { return polls; }
        polls = polls + 1;
      }
      return -1;
    }
  )");
  InputSpec spec;
  spec.argv = {"prog"};
  spec.world.listen_fd = -1;
  CellRunner runner(*c.module, spec);
  SignalAfterPolicy policy(5);
  CellRunConfig config;
  config.policy = &policy;
  const CellRunOutput out = runner.Run(config);
  EXPECT_EQ(out.result.exit_code, 5);
}

TEST(VosTest, DynamicTraceRecordsSyscalls) {
  Compiled c = CompileOrDie(R"(
    int main() {
      char buf[8];
      int r = read(0, buf, 4);
      if (poll_signal()) { return 1; }
      return r;
    }
  )");
  CellRunner runner(*c.module, SpecWithStdin("abcd"));
  const CellRunOutput out = runner.Run(CellRunConfig{});
  ASSERT_EQ(out.dyn_trace.size(), 2u);
  EXPECT_EQ(out.dyn_trace[0].kind, Builtin::kRead);
  EXPECT_EQ(out.dyn_trace[0].value, 4);
  EXPECT_EQ(out.dyn_trace[1].kind, Builtin::kPollSignal);
  const SyscallLog log = SyscallLogFromTrace(out.dyn_trace);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(SyscallLogBytes(log), 10u);
}

TEST(VosTest, ReplayLogPinsResults) {
  Compiled c = CompileOrDie(R"(
    int main() {
      char buf[16];
      int r1 = read(0, buf, 10);
      int r2 = read(0, &buf[r1], 10);
      return r1 * 10 + r2;
    }
  )");
  // Log says: first read returned 3, second returned 2.
  SyscallLog log = {{Builtin::kRead, 3}, {Builtin::kRead, 2}};
  CellRunner runner(*c.module, SpecWithStdin("abcdefgh"));
  CellRunConfig config;
  config.replay_log = &log;
  const CellRunOutput out = runner.Run(config);
  EXPECT_EQ(out.result.exit_code, 32);
  EXPECT_FALSE(out.log_diverged);
}

TEST(VosTest, ModelOverridesSyscallCells) {
  Compiled c = CompileOrDie(R"(
    int main() {
      char buf[16];
      int r = read(0, buf, 10);
      return r;
    }
  )");
  CellRunner runner(*c.module, SpecWithStdin("abcdefgh"));
  // First run captures the dynamic cell id; then force a short read.
  CellRunOutput first = runner.Run(CellRunConfig{});
  EXPECT_EQ(first.result.exit_code, 8);
  ASSERT_EQ(first.dyn_trace.size(), 1u);
  std::vector<i64> model = first.cells;
  model[first.dyn_trace[0].cell] = 2;
  CellRunConfig config;
  config.model = model;
  const CellRunOutput out = runner.Run(config);
  EXPECT_EQ(out.result.exit_code, 2);
}

TEST(VosTest, StripContentsKeepsShape) {
  InputSpec spec = SpecWithStdin("secret-bytes");
  const WorldShape stripped = spec.world.StripContents();
  ASSERT_EQ(stripped.streams.size(), 1u);
  EXPECT_TRUE(stripped.streams[0].bytes.empty());
  EXPECT_EQ(stripped.streams[0].length, 12);
}

}  // namespace
}  // namespace retrace
