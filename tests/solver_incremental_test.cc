// Tests for the incremental solving layer (src/solver/incremental.h):
// independence partitioning, fleet-wide slice caches, the log-bits
// priority frontier, and their wiring into the replay engine.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "src/core/pipeline.h"
#include "src/solver/incremental.h"
#include "src/support/rng.h"
#include "src/support/workqueue.h"
#include "tests/testutil.h"

namespace retrace {
namespace {

// ----- Partition correctness -----

// Three independent components over nine byte cells; the seed violates
// every one, so each slice needs genuine repair. The stitched model must
// satisfy the *whole* set.
TEST(IncrementalSolverTest, StitchedModelSatisfiesWholeSet) {
  ExprArena arena;
  std::vector<Constraint> cs;
  for (i32 base = 0; base < 9; base += 3) {
    const ExprRef v0 = arena.MkVar(base);
    const ExprRef v1 = arena.MkVar(base + 1);
    const ExprRef v2 = arena.MkVar(base + 2);
    cs.push_back({arena.MkBin(ExprOp::kEq, v0, arena.MkConst('a' + base)), true});
    cs.push_back({arena.MkBin(ExprOp::kGt, arena.MkBin(ExprOp::kAdd, v0, v1),
                              arena.MkConst(200)), true});
    cs.push_back({arena.MkBin(ExprOp::kNe, v1, v2), true});
  }
  const std::vector<Interval> domains(9, Interval{0, 255});
  const std::vector<i64> seed(9, 0);

  IncrementalSolver inc(arena, SolverOptions{}, nullptr);
  const SolveResult r = inc.Solve(ConstraintSpan(cs.data(), cs.size()), domains, seed);
  ASSERT_EQ(r.status, SolveStatus::kSat);

  Solver plain(arena, SolverOptions{});
  EXPECT_TRUE(plain.Satisfies(cs, r.model));
  // The set really was split: three components, each solved separately.
  EXPECT_EQ(inc.stats().slices_total, 3u);
  EXPECT_EQ(inc.stats().slices_solved, 3u);
}

TEST(IncrementalSolverTest, NegateLastViewOnlyAffectsLastConstraint) {
  ExprArena arena;
  const ExprRef x = arena.MkVar(0);
  const ExprRef y = arena.MkVar(1);
  std::vector<Constraint> cs{{arena.MkBin(ExprOp::kEq, x, arena.MkConst(7)), true},
                             {arena.MkBin(ExprOp::kEq, y, arena.MkConst(9)), true}};
  const std::vector<Interval> domains(2, Interval{0, 255});

  IncrementalSolver inc(arena, SolverOptions{}, nullptr);
  const SolveResult r =
      inc.Solve(ConstraintSpan(cs.data(), cs.size(), /*negate_last=*/true), domains, {0, 0});
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_EQ(r.model[0], 7);   // First constraint untouched by the view.
  EXPECT_NE(r.model[1], 9);   // Last constraint negated.
}

// The monolithic solver over a negate-last span must be bit-identical to
// the legacy materialize-prefix-and-negate vector path — this is what
// makes the cache-off engine the bit-identical pre-parallel engine.
TEST(IncrementalSolverTest, SpanSolveMatchesCopiedVectorSolve) {
  ExprArena arena;
  std::vector<Constraint> trace;
  for (i32 v = 0; v < 6; ++v) {
    trace.push_back({arena.MkBin(ExprOp::kGt, arena.MkVar(v), arena.MkConst(40 + v)), true});
  }
  const std::vector<Interval> domains(6, Interval{0, 255});
  const std::vector<i64> seed(6, 10);
  Solver solver(arena, SolverOptions{});

  for (size_t len = 1; len <= trace.size(); ++len) {
    // Legacy shape: copy the prefix, negate the last constraint.
    std::vector<Constraint> copied(trace.begin(), trace.begin() + len);
    copied.back().want_true = !copied.back().want_true;
    const SolveResult from_copy = solver.Solve(copied, domains, seed);
    const SolveResult from_span =
        solver.Solve(ConstraintSpan(trace.data(), len, /*negate_last=*/true), domains, seed);
    ASSERT_EQ(from_copy.status, from_span.status) << "len=" << len;
    EXPECT_EQ(from_copy.model, from_span.model) << "len=" << len;
    EXPECT_EQ(from_copy.steps, from_span.steps) << "len=" << len;
  }
}

TEST(IncrementalSolverTest, FalseConstantConstraintIsUnsat) {
  ExprArena arena;
  std::vector<Constraint> cs{{arena.MkConst(0), true}};
  IncrementalSolver inc(arena, SolverOptions{}, nullptr);
  const SolveResult r = inc.Solve(ConstraintSpan(cs.data(), cs.size()), {}, {});
  EXPECT_EQ(r.status, SolveStatus::kUnsat);
}

TEST(IncrementalSolverTest, UnsatSliceRejectsWholeSet) {
  ExprArena arena;
  const ExprRef x = arena.MkVar(0);
  const ExprRef y = arena.MkVar(1);
  // Slice {x}: satisfiable. Slice {y}: y == 3 && y == 5, unsatisfiable.
  std::vector<Constraint> cs{{arena.MkBin(ExprOp::kEq, x, arena.MkConst(1)), true},
                             {arena.MkBin(ExprOp::kEq, y, arena.MkConst(3)), true},
                             {arena.MkBin(ExprOp::kEq, y, arena.MkConst(5)), true}};
  const std::vector<Interval> domains(2, Interval{0, 255});
  SliceCache cache;
  IncrementalSolver inc(arena, SolverOptions{}, &cache);
  const SolveResult r = inc.Solve(ConstraintSpan(cs.data(), cs.size()), domains, {0, 0});
  EXPECT_EQ(r.status, SolveStatus::kUnsat);
  EXPECT_EQ(cache.unsat_entries(), 1u);
}

// ----- Slice caches -----

// The same structural slice built in two different arenas (different
// interning histories) must share cache entries, and the hit must produce
// a model that still satisfies the consumer's live constraints.
TEST(IncrementalSolverTest, CacheHitsAcrossArenasStaySound) {
  SliceCache cache;
  auto build = [](ExprArena* arena, int noise) {
    for (int i = 0; i < noise; ++i) {
      arena->MkVar(100 + i);  // Shift raw refs between the arenas.
    }
    const ExprRef x = arena->MkVar(0);
    const ExprRef y = arena->MkVar(1);
    return std::vector<Constraint>{
        {arena->MkBin(ExprOp::kEq, x, arena->MkConst('q')), true},
        {arena->MkBin(ExprOp::kGt, y, arena->MkConst(200)), true}};
  };
  const std::vector<Interval> domains(2, Interval{0, 255});

  ExprArena a;
  const std::vector<Constraint> ca = build(&a, 0);
  IncrementalSolver inc_a(a, SolverOptions{}, &cache);
  const SolveResult ra = inc_a.Solve(ConstraintSpan(ca.data(), ca.size()), domains, {0, 0});
  ASSERT_EQ(ra.status, SolveStatus::kSat);
  EXPECT_EQ(inc_a.stats().slice_sat_hits, 0u);
  EXPECT_EQ(inc_a.stats().slices_solved, 2u);

  ExprArena b;
  const std::vector<Constraint> cb = build(&b, 7);
  IncrementalSolver inc_b(b, SolverOptions{}, &cache);
  const SolveResult rb = inc_b.Solve(ConstraintSpan(cb.data(), cb.size()), domains, {0, 0});
  ASSERT_EQ(rb.status, SolveStatus::kSat);
  EXPECT_EQ(inc_b.stats().slice_sat_hits, 2u);  // Both slices from the cache.
  EXPECT_EQ(inc_b.stats().slices_solved, 0u);
  Solver plain_b(b, SolverOptions{});
  EXPECT_TRUE(plain_b.Satisfies(cb, rb.model));
}

// An UNSAT verdict is keyed to the exact domains it was proved under: the
// same constraint over a wider domain is a different subproblem and must
// still come back SAT.
TEST(IncrementalSolverTest, UnsatCacheNeverMasksSatSet) {
  ExprArena arena;
  const ExprRef x = arena.MkVar(0);
  std::vector<Constraint> cs{{arena.MkBin(ExprOp::kGt, x, arena.MkConst(5)), true}};
  SliceCache cache;
  IncrementalSolver inc(arena, SolverOptions{}, &cache);

  const SolveResult narrow =
      inc.Solve(ConstraintSpan(cs.data(), cs.size()), {Interval{0, 5}}, {0});
  ASSERT_EQ(narrow.status, SolveStatus::kUnsat);
  ASSERT_EQ(cache.unsat_entries(), 1u);

  const SolveResult wide =
      inc.Solve(ConstraintSpan(cs.data(), cs.size()), {Interval{0, 255}}, {0});
  ASSERT_EQ(wide.status, SolveStatus::kSat);
  EXPECT_GT(wide.model[0], 5);
  EXPECT_EQ(inc.stats().slice_unsat_hits, 0u);  // Wider domain = new key.
}

// Warm solves hit every slice, and the hits keep producing valid models.
TEST(IncrementalSolverTest, WarmCacheHitsStayValid) {
  ExprArena arena;
  const ExprRef x = arena.MkVar(0);
  const ExprRef y = arena.MkVar(1);
  std::vector<Constraint> cs{{arena.MkBin(ExprOp::kEq, x, arena.MkConst(9)), true},
                             {arena.MkBin(ExprOp::kLt, y, arena.MkConst(4)), true}};
  const std::vector<Interval> domains(2, Interval{0, 255});
  SliceCache cache;
  IncrementalSolver inc(arena, SolverOptions{}, &cache);
  Solver plain(arena, SolverOptions{});

  for (int round = 0; round < 3; ++round) {
    const SolveResult r = inc.Solve(ConstraintSpan(cs.data(), cs.size()), domains, {0, 200});
    ASSERT_EQ(r.status, SolveStatus::kSat);
    EXPECT_TRUE(plain.Satisfies(cs, r.model));
  }
  EXPECT_EQ(inc.stats().slices_solved, 2u);      // First round only.
  EXPECT_EQ(inc.stats().slice_sat_hits, 4u);     // Two slices x two rounds.
}

// ----- Log-bits priority frontier -----

TEST(IncrementalSolverTest, WorkQueueHighestPriorityOrder) {
  WorkStealingQueue<int> queue(2);
  queue.Push(0, 1, /*priority=*/10);
  queue.Push(0, 2, /*priority=*/30);
  queue.Push(0, 3, /*priority=*/20);
  queue.Push(0, 4, /*priority=*/30);  // Ties break newest: 4 before 2.

  int out = 0;
  bool stolen = false;
  ASSERT_TRUE(queue.Pop(0, PopOrder::kHighestPriority, &out, &stolen));
  EXPECT_EQ(out, 4);
  ASSERT_TRUE(queue.Pop(0, PopOrder::kHighestPriority, &out, &stolen));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(queue.Pop(0, PopOrder::kHighestPriority, &out, &stolen));
  EXPECT_EQ(out, 3);
  // Thieves still take the victim's front (oldest), priority or not.
  ASSERT_TRUE(queue.Pop(1, PopOrder::kHighestPriority, &out, &stolen));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(stolen);
}

TEST(IncrementalSolverTest, WorkQueuePopBatchDrainsOwnDequeOnly) {
  WorkStealingQueue<int> queue(2);
  queue.Push(0, 1);
  queue.Push(0, 2);
  queue.Push(1, 9);

  std::vector<int> out;
  u64 stolen = 0;
  // Own deque first: both items, newest first, no steal of worker 1's item.
  ASSERT_TRUE(queue.PopBatch(0, PopOrder::kNewestFirst, 8, &out, &stolen));
  EXPECT_EQ(out, (std::vector<int>{2, 1}));
  EXPECT_EQ(stolen, 0u);
  // Empty own deque: the first (and only the first) item may be stolen.
  ASSERT_TRUE(queue.PopBatch(0, PopOrder::kNewestFirst, 8, &out, &stolen));
  EXPECT_EQ(out, (std::vector<int>{9}));
  EXPECT_EQ(stolen, 1u);
}

// The direction key is independent of the priority key: the same frontier
// serves log-bits and direction-aware consumers with different orders.
TEST(IncrementalSolverTest, WorkQueueHighestDirectionOrder) {
  WorkStealingQueue<int> queue(1);
  queue.Push(0, 1, /*priority=*/100, /*direction=*/1);
  queue.Push(0, 2, /*priority=*/1, /*direction=*/50);
  queue.Push(0, 3, /*priority=*/50, /*direction=*/50);  // Direction tie: newest first.

  int out = 0;
  bool stolen = false;
  ASSERT_TRUE(queue.Pop(0, PopOrder::kHighestDirection, &out, &stolen));
  EXPECT_EQ(out, 3);
  ASSERT_TRUE(queue.Pop(0, PopOrder::kHighestDirection, &out, &stolen));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(queue.Pop(0, PopOrder::kHighestDirection, &out, &stolen));
  EXPECT_EQ(out, 1);
}

// Batched priority takes must return the same multiset as repeated
// single pops, in descending key order — the batch path is one selection
// pass with swap-removals, not one O(n) scan per extra.
TEST(IncrementalSolverTest, WorkQueuePopBatchHighestPriorityOrder) {
  WorkStealingQueue<int> queue(1);
  const u64 priorities[] = {10, 30, 20, 30, 5, 40, 20};
  for (int i = 0; i < 7; ++i) {
    queue.Push(0, i + 1, priorities[i]);
  }

  std::vector<int> out;
  u64 stolen = 0;
  ASSERT_TRUE(queue.PopBatch(0, PopOrder::kHighestPriority, 5, &out, &stolen));
  EXPECT_EQ(stolen, 0u);
  // 40 first, then the 30s (newest of the tie first), then the 20s.
  EXPECT_EQ(out, (std::vector<int>{6, 4, 2, 7, 3}));
  // The remainder is still poppable in priority order.
  int one = 0;
  bool was_stolen = false;
  ASSERT_TRUE(queue.Pop(0, PopOrder::kHighestPriority, &one, &was_stolen));
  EXPECT_EQ(one, 1);  // priority 10.
  ASSERT_TRUE(queue.Pop(0, PopOrder::kHighestPriority, &one, &was_stolen));
  EXPECT_EQ(one, 5);  // priority 5.
}

// ----- Prefix-subsumption index -----

TEST(IncrementalSolverTest, FingerprintSetInsertSemantics) {
  FingerprintSet set;
  EXPECT_FALSE(set.Contains(42));
  EXPECT_TRUE(set.Insert(42));    // First sighting.
  EXPECT_FALSE(set.Insert(42));   // Duplicate: the push-side prune signal.
  EXPECT_TRUE(set.Contains(42));
  for (u64 fp = 0; fp < 1000; ++fp) {
    EXPECT_TRUE(set.Insert(fp * 0x9e3779b97f4a7c15ull + 1));
  }
  EXPECT_EQ(set.size(), 1001u);
}

// The chain primitives must agree with FingerprintConstraints at every
// prefix, and a negate-last pending set must fingerprint exactly like a
// run that executed the opposite polarity — the subsumption identity.
TEST(IncrementalSolverTest, FingerprintChainMatchesPrefixFingerprints) {
  ExprArena arena;
  std::vector<Constraint> cs;
  for (int i = 0; i < 6; ++i) {
    const ExprRef cmp = arena.MkBin(ExprOp::kGt, arena.MkVar(i), arena.MkConst(10 * i));
    cs.push_back(Constraint{cmp, (i % 2) == 0});
  }
  const PortableTrace trace = ExportTrace(arena, cs);
  const std::vector<u64> node_hash = PortableNodeHashes(trace);

  u64 chain = kConstraintFingerprintSeed;
  for (size_t i = 0; i < trace.constraints.size(); ++i) {
    const Constraint& c = trace.constraints[i];
    // Prefix [0, i) as executed == the chain so far.
    EXPECT_EQ(chain, FingerprintConstraints(trace, i, /*negate_last=*/false)) << i;
    // A pending that negates constraint i fingerprints as the chain
    // extended with the flipped polarity...
    EXPECT_EQ(ExtendConstraintFingerprint(chain, node_hash[c.expr], !c.want_true),
              FingerprintConstraints(trace, i + 1, /*negate_last=*/true))
        << i;
    chain = ExtendConstraintFingerprint(chain, node_hash[c.expr], c.want_true);
    // ...which is exactly the fingerprint of a trace that *executed* the
    // opposite direction there (checked via the arena-side hash too).
    EXPECT_EQ(chain, FingerprintConstraints(trace, i + 1, /*negate_last=*/false)) << i;
    EXPECT_EQ(arena.StructuralHash(cs[i].expr), node_hash[trace.constraints[i].expr]) << i;
  }
}

// ----- Engine wiring -----

constexpr const char* kDeepGuardedCrash = R"(
int main(int argc, char **argv) {
  if (argc < 3) { return 1; }
  int hits = 0;
  if (argv[1][0] == 'a') { hits = hits + 1; }
  if (argv[1][1] == 'b') { hits = hits + 1; }
  if (argv[1][2] == 'c') { hits = hits + 1; }
  if (argv[2][0] > 'm') { hits = hits + 1; }
  if (hits == 4) { crash(7); }
  return 0;
}
)";

std::unique_ptr<Pipeline> MustBuild(std::string_view app) {
  auto r = Pipeline::FromSources(app, {});
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().ToString());
  return r.take();
}

InputSpec DeepGuardedCrashInput() {
  InputSpec spec;
  spec.argv = {"prog", "abc", "z"};
  spec.world.listen_fd = -1;
  return spec;
}

// Cache soundness end to end at 1 and 4 workers: with the layer on, the
// engine still reproduces and the witness verifies; the layer actually
// engaged (slices were solved / hit).
TEST(IncrementalSolverTest, EngineCacheSoundAtOneAndFourWorkers) {
  auto pipeline = MustBuild(kDeepGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(DeepGuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  for (const u32 workers : {1u, 4u}) {
    ReplayConfig config;
    config.num_workers = workers;
    config.solver_cache = true;
    const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
    ASSERT_TRUE(replay.reproduced) << workers << " workers";
    EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));
    EXPECT_GT(replay.stats.slices_solved + replay.stats.slice_sat_hits +
                  replay.stats.slice_unsat_hits,
              0u)
        << workers << " workers";
  }
}

// With the layer off, the engine must not report slice activity (and the
// sequential path is the bit-identical legacy loop: the monolithic branch
// is pinned by SpanSolveMatchesCopiedVectorSolve above, and the loop
// around it is unchanged when solver_cache is false).
TEST(IncrementalSolverTest, EngineCacheOffReportsNoSliceActivity) {
  auto pipeline = MustBuild(kDeepGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(DeepGuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig config;
  config.solver_cache = false;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
  ASSERT_TRUE(replay.reproduced);
  EXPECT_EQ(replay.stats.slices_solved, 0u);
  EXPECT_EQ(replay.stats.slice_sat_hits, 0u);
  EXPECT_EQ(replay.stats.slice_unsat_hits, 0u);
}

// Pick::kLogBits reproduces at both worker counts, and the new counters
// aggregate losslessly across workers.
TEST(IncrementalSolverTest, LogBitsPickReproduces) {
  auto pipeline = MustBuild(kDeepGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(DeepGuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  for (const u32 workers : {1u, 4u}) {
    ReplayConfig config;
    config.num_workers = workers;
    config.pick = ReplayConfig::Pick::kLogBits;
    const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
    ASSERT_TRUE(replay.reproduced) << workers << " workers";
    EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));

    u64 solved = 0;
    u64 sat_hits = 0;
    u64 unsat_hits = 0;
    for (const ReplayWorkerStats& w : replay.stats.per_worker) {
      solved += w.slices_solved;
      sat_hits += w.slice_sat_hits;
      unsat_hits += w.slice_unsat_hits;
    }
    EXPECT_EQ(replay.stats.slices_solved, solved);
    EXPECT_EQ(replay.stats.slice_sat_hits, sat_hits);
    EXPECT_EQ(replay.stats.slice_unsat_hits, unsat_hits);
  }
}

// ----- SliceCache LRU bound + gossip journal -----

// Keys that land in one internal cache shard (the shard index is the top
// five bits), so per-shard eviction order is observable.
constexpr u64 ShardKey(u64 i) { return (0x1ull << 59) | i; }

TEST(IncrementalSolverTest, SliceCacheCapacityBoundsEntries) {
  SliceCache cache(/*capacity=*/32);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    if ((i & 1) != 0) {
      cache.StoreSat(rng.Next(), {{0, i}});
    } else {
      cache.StoreUnsat(rng.Next(), rng.Next());
    }
  }
  EXPECT_LE(cache.sat_entries() + cache.unsat_entries(), 32u);
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(IncrementalSolverTest, SliceCacheEvictsLeastRecentlyUsed) {
  // Capacity 32 over 16 internal shards = 2 entries per shard.
  SliceCache cache(/*capacity=*/32);
  cache.StoreSat(ShardKey(1), {{0, 10}});
  cache.StoreSat(ShardKey(2), {{0, 20}});
  // Touch key 1 so key 2 is now the least recently used.
  SliceCache::SliceModel model;
  ASSERT_TRUE(cache.LookupSat(ShardKey(1), &model));
  cache.StoreSat(ShardKey(3), {{0, 30}});  // Evicts key 2, not key 1.
  EXPECT_TRUE(cache.LookupSat(ShardKey(1), &model));
  EXPECT_EQ(model, (SliceCache::SliceModel{{0, 10}}));
  EXPECT_FALSE(cache.LookupSat(ShardKey(2), &model));
  EXPECT_TRUE(cache.LookupSat(ShardKey(3), &model));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(IncrementalSolverTest, SliceCacheUnboundedNeverEvicts) {
  SliceCache cache;  // Default: unbounded, the historical behavior.
  for (u64 i = 0; i < 1000; ++i) {
    cache.StoreSat(i * 0x9e3779b97f4a7c15ull, {{0, 1}});
  }
  EXPECT_EQ(cache.sat_entries(), 1000u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(IncrementalSolverTest, SliceCacheJournalDrainsOnlyLocalStores) {
  SliceCache cache;
  cache.EnableJournal();
  cache.StoreSat(ShardKey(1), {{0, 5}});
  cache.StoreUnsat(ShardKey(2), 99);
  // Gossip-merged entries must not re-enter the journal (no echo).
  cache.MergeSat(ShardKey(3), {{1, 6}});
  cache.MergeUnsat(ShardKey(4), 100);
  // A duplicate store journals nothing (first store won).
  cache.StoreSat(ShardKey(1), {{0, 7}});

  std::vector<SliceCache::SatEntry> sat;
  std::vector<SliceCache::UnsatEntry> unsat;
  cache.DrainJournal(&sat, &unsat);
  ASSERT_EQ(sat.size(), 1u);
  EXPECT_EQ(sat[0].key, ShardKey(1));
  EXPECT_EQ(sat[0].model, (SliceCache::SliceModel{{0, 5}}));
  ASSERT_EQ(unsat.size(), 1u);
  EXPECT_EQ(unsat[0].key, ShardKey(2));
  EXPECT_EQ(unsat[0].check, 99u);

  // Drained: the next drain is empty; merged entries are still served.
  sat.clear();
  unsat.clear();
  cache.DrainJournal(&sat, &unsat);
  EXPECT_TRUE(sat.empty());
  EXPECT_TRUE(unsat.empty());
  SliceCache::SliceModel model;
  EXPECT_TRUE(cache.LookupSat(ShardKey(3), &model));
  EXPECT_TRUE(cache.LookupUnsat(ShardKey(4), 100));
}

// The engine-level knob: a tiny capacity must force evictions during a
// real search and surface them in the aggregate stats, without breaking
// reproduction (evicted verdicts are simply re-proved). The scenario has
// 32 independent byte guards — 32 distinct slice keys — so a capacity of
// 16 (one entry per internal cache shard) evicts by pigeonhole no matter
// how the keys spread.
TEST(IncrementalSolverTest, EngineHonorsSliceCacheCapacity) {
  std::string src = "int main(int argc, char **argv) {\n"
                    "  if (argc < 2) { return 1; }\n"
                    "  int hits = 0;\n";
  std::string input;
  for (int i = 0; i < 32; ++i) {
    src += "  if (argv[1][" + std::to_string(i) + "] == 'a') { hits = hits + 1; }\n";
    input += 'a';
  }
  src += "  if (hits == 32) { crash(9); }\n  return 0;\n}\n";
  auto pipeline = MustBuild(src);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  InputSpec spec;
  spec.argv = {"prog", input};
  spec.world.listen_fd = -1;
  const auto user = pipeline->RecordUserRun(spec, plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  for (const u32 workers : {1u, 4u}) {
    ReplayConfig config;
    config.num_workers = workers;
    config.slice_cache_capacity = 16;
    const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
    ASSERT_TRUE(replay.reproduced) << workers << " workers";
    EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));
    EXPECT_GT(replay.stats.slice_evictions, 0u) << workers << " workers";
  }
  // Unbounded default reports zero evictions on the same scenario.
  ReplayConfig unbounded;
  unbounded.num_workers = 4;
  const ReplayResult base = pipeline->Reproduce(user.report, plan, unbounded).take();
  ASSERT_TRUE(base.reproduced);
  EXPECT_EQ(base.stats.slice_evictions, 0u);
}

// ----- Snapshot persistence (replay-as-a-service warm restarts) -----

std::string SnapshotPath(const char* name) { return testing::TempDir() + name; }

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(SliceCacheSnapshotTest, RoundTripRestoresEveryVerdict) {
  SliceCache cache;
  cache.StoreSat(0x11, SliceCache::SliceModel{{0, 42}, {3, -7}});
  cache.StoreSat(0x22, SliceCache::SliceModel{});
  cache.StoreUnsat(0x33, 0x44);
  cache.StoreUnsat(0x55, 0x66);

  const std::string path = SnapshotPath("slice_cache_roundtrip.bin");
  SliceCache::SnapshotInfo saved;
  ASSERT_TRUE(cache.SaveSnapshot(path, &saved));
  EXPECT_EQ(saved.sat_entries, 2u);
  EXPECT_EQ(saved.unsat_entries, 2u);
  EXPECT_GT(saved.bytes, 0u);

  SliceCache fresh;
  SliceCache::SnapshotInfo loaded;
  ASSERT_TRUE(fresh.LoadSnapshot(path, &loaded));
  EXPECT_EQ(loaded.sat_entries, 2u);
  EXPECT_EQ(loaded.unsat_entries, 2u);
  SliceCache::SliceModel model;
  ASSERT_TRUE(fresh.LookupSat(0x11, &model));
  EXPECT_EQ(model, (SliceCache::SliceModel{{0, 42}, {3, -7}}));
  ASSERT_TRUE(fresh.LookupSat(0x22, &model));
  EXPECT_TRUE(model.empty());
  EXPECT_TRUE(fresh.LookupUnsat(0x33, 0x44));
  EXPECT_FALSE(fresh.LookupUnsat(0x33, 0x45));  // Check key still enforced.
  EXPECT_TRUE(fresh.LookupUnsat(0x55, 0x66));
  std::remove(path.c_str());
}

TEST(SliceCacheSnapshotTest, LoadedEntriesAreNeverReJournaled) {
  // A restarted shard must not gossip the whole restored cache as if it
  // had just proved every entry.
  SliceCache cache;
  cache.StoreSat(0x77, SliceCache::SliceModel{{1, 2}});
  const std::string path = SnapshotPath("slice_cache_journal.bin");
  ASSERT_TRUE(cache.SaveSnapshot(path));

  SliceCache fresh;
  fresh.EnableJournal();
  ASSERT_TRUE(fresh.LoadSnapshot(path));
  std::vector<SliceCache::SatEntry> sat;
  std::vector<SliceCache::UnsatEntry> unsat;
  fresh.DrainJournal(&sat, &unsat);
  EXPECT_TRUE(sat.empty());
  EXPECT_TRUE(unsat.empty());
  std::remove(path.c_str());
}

TEST(SliceCacheSnapshotTest, TruncationAndCorruptionAreRejectedUntouched) {
  SliceCache cache;
  cache.StoreSat(0xaa, SliceCache::SliceModel{{0, 1}, {1, 2}, {2, 3}});
  cache.StoreUnsat(0xbb, 0xcc);
  const std::string path = SnapshotPath("slice_cache_hostile.bin");
  ASSERT_TRUE(cache.SaveSnapshot(path));
  const std::vector<char> good = ReadAll(path);
  ASSERT_GT(good.size(), 8u);

  const std::string bad = SnapshotPath("slice_cache_hostile_bad.bin");
  // Every strict prefix is a refused load, and the target cache stays
  // exactly as it was.
  for (const size_t cut : {good.size() - 1, good.size() / 2, size_t{5}, size_t{0}}) {
    WriteAll(bad, std::vector<char>(good.begin(), good.begin() + cut));
    SliceCache victim;
    victim.StoreSat(0x1, SliceCache::SliceModel{{0, 9}});
    EXPECT_FALSE(victim.LoadSnapshot(bad)) << "cut " << cut;
    EXPECT_EQ(victim.sat_entries(), 1u) << "cut " << cut;
    EXPECT_EQ(victim.unsat_entries(), 0u) << "cut " << cut;
  }
  // One flipped payload byte fails the digest.
  {
    std::vector<char> flipped = good;
    flipped.back() = static_cast<char>(flipped.back() ^ 0x01);
    WriteAll(bad, flipped);
    SliceCache victim;
    EXPECT_FALSE(victim.LoadSnapshot(bad));
    EXPECT_EQ(victim.sat_entries() + victim.unsat_entries(), 0u);
  }
  // Trailing garbage after a valid payload is refused, not ignored.
  {
    std::vector<char> padded = good;
    padded.push_back('x');
    WriteAll(bad, padded);
    SliceCache victim;
    EXPECT_FALSE(victim.LoadSnapshot(bad));
  }
  // Wrong magic (a random file is not a snapshot).
  {
    std::vector<char> wrong = good;
    wrong[0] = static_cast<char>(wrong[0] ^ 0xff);
    WriteAll(bad, wrong);
    SliceCache victim;
    EXPECT_FALSE(victim.LoadSnapshot(bad));
  }
  // Missing file.
  {
    SliceCache victim;
    EXPECT_FALSE(victim.LoadSnapshot(SnapshotPath("no_such_snapshot.bin")));
  }
  std::remove(path.c_str());
  std::remove(bad.c_str());
}

TEST(SliceCacheSnapshotTest, LoadMergesFirstStoreWins) {
  SliceCache donor;
  donor.StoreSat(0xd1, SliceCache::SliceModel{{0, 100}});
  donor.StoreSat(0xd2, SliceCache::SliceModel{{0, 200}});
  const std::string path = SnapshotPath("slice_cache_merge.bin");
  ASSERT_TRUE(donor.SaveSnapshot(path));

  // The receiving cache already proved 0xd1 with a different (equally
  // valid) model; the resident proof wins, the novel entry merges in.
  SliceCache receiver;
  receiver.StoreSat(0xd1, SliceCache::SliceModel{{0, 7}});
  ASSERT_TRUE(receiver.LoadSnapshot(path));
  SliceCache::SliceModel model;
  ASSERT_TRUE(receiver.LookupSat(0xd1, &model));
  EXPECT_EQ(model, (SliceCache::SliceModel{{0, 7}}));
  ASSERT_TRUE(receiver.LookupSat(0xd2, &model));
  EXPECT_EQ(model, (SliceCache::SliceModel{{0, 200}}));
  EXPECT_EQ(receiver.sat_entries(), 2u);
  std::remove(path.c_str());
}

TEST(SliceCacheSnapshotTest, LoadRespectsLruBound) {
  SliceCache donor;
  for (u64 k = 1; k <= 64; ++k) {
    donor.StoreSat(k, SliceCache::SliceModel{{0, static_cast<i64>(k)}});
  }
  const std::string path = SnapshotPath("slice_cache_bound.bin");
  ASSERT_TRUE(donor.SaveSnapshot(path));

  SliceCache bounded(16);
  ASSERT_TRUE(bounded.LoadSnapshot(path));
  EXPECT_LE(bounded.sat_entries(), 16u);
  EXPECT_GT(bounded.evictions(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace retrace
