#include <gtest/gtest.h>

#include "src/instrument/recorder.h"
#include "tests/testutil.h"

namespace retrace {
namespace {

// A module with 6 branch locations for plan tests.
Compiled SixBranchModule() {
  return CompileOrDie(R"(
    int main(int argc, char **argv) {
      if (argv[1][0] == 'a') { return 1; }
      if (argv[1][1] == 'b') { return 2; }
      if (argc == 2) { return 3; }
      for (int i = 0; i < 3; i = i + 1) { }
      while (argc > 100) { argc = argc - 1; }
      if (argv[1][2] == 'c') { return 4; }
      return 0;
    }
  )");
}

TEST(PlanTest, AllBranchesInstrumentsEverything) {
  Compiled c = SixBranchModule();
  const InstrumentationPlan plan = BuildPlan(*c.module, PlanInputs::AllBranches());
  EXPECT_EQ(plan.NumInstrumented(), c.module->branches.size());
  EXPECT_EQ(plan.detail_level, 0u);
  EXPECT_EQ(plan.provenance, InstrumentMethodName(InstrumentMethod::kAllBranches));
}

TEST(PlanTest, DynamicUsesOnlySymbolicLabels) {
  Compiled c = SixBranchModule();
  AnalysisResult dyn;
  dyn.labels.assign(c.module->branches.size(), BranchLabel::kUnvisited);
  dyn.labels[0] = BranchLabel::kSymbolic;
  dyn.labels[1] = BranchLabel::kConcrete;
  const InstrumentationPlan plan = BuildPlan(*c.module, PlanInputs::Dynamic(dyn));
  EXPECT_EQ(plan.NumInstrumented(), 1u);
  EXPECT_TRUE(plan.Instrumented(0));
}

TEST(PlanTest, StaticUsesStaticBitset) {
  Compiled c = SixBranchModule();
  StaticAnalysisResult stat;
  stat.symbolic_branches = DenseBitset(c.module->branches.size());
  stat.symbolic_branches.Set(2);
  stat.symbolic_branches.Set(4);
  const InstrumentationPlan plan = BuildPlan(*c.module, PlanInputs::Static(stat));
  EXPECT_EQ(plan.NumInstrumented(), 2u);
}

TEST(PlanTest, CombinedRule) {
  Compiled c = SixBranchModule();
  const size_t n = c.module->branches.size();
  ASSERT_GE(n, 4u);
  AnalysisResult dyn;
  dyn.labels.assign(n, BranchLabel::kUnvisited);
  std::vector<BranchLabel>& labels = dyn.labels;
  StaticAnalysisResult stat;
  stat.symbolic_branches = DenseBitset(n);

  // Branch 0: dynamic says symbolic -> instrumented (regardless of static).
  labels[0] = BranchLabel::kSymbolic;
  // Branch 1: dynamic says concrete, static says symbolic -> override, not
  // instrumented.
  labels[1] = BranchLabel::kConcrete;
  stat.symbolic_branches.Set(1);
  // Branch 2: unvisited, static says symbolic -> instrumented.
  stat.symbolic_branches.Set(2);
  // Branch 3: unvisited, static says concrete -> not instrumented.

  const InstrumentationPlan plan =
      BuildPlan(*c.module, PlanInputs::DynamicStatic(dyn, stat));
  EXPECT_TRUE(plan.Instrumented(0));
  EXPECT_FALSE(plan.Instrumented(1));
  EXPECT_TRUE(plan.Instrumented(2));
  EXPECT_FALSE(plan.Instrumented(3));

  // Ablation: without the override, branch 1 stays instrumented.
  PlanOptions no_override;
  no_override.dynamic_overrides_static = false;
  const InstrumentationPlan plan2 =
      BuildPlan(*c.module, PlanInputs::DynamicStatic(dyn, stat), no_override);
  EXPECT_TRUE(plan2.Instrumented(1));
}

TEST(PlanTest, MethodOrderingInvariant) {
  // dynamic ⊆ dynamic+static ⊆ static-union-dynamic ⊆ all, given labels
  // consistent with a sound static analysis.
  Compiled c = SixBranchModule();
  const size_t n = c.module->branches.size();
  AnalysisResult dynr;
  dynr.labels.assign(n, BranchLabel::kUnvisited);
  std::vector<BranchLabel>& labels = dynr.labels;
  StaticAnalysisResult stat;
  stat.symbolic_branches = DenseBitset(n);
  // Static over-approximates: everything dynamic saw as symbolic plus more.
  labels[0] = BranchLabel::kSymbolic;
  stat.symbolic_branches.Set(0);
  stat.symbolic_branches.Set(1);
  labels[2] = BranchLabel::kConcrete;
  stat.symbolic_branches.Set(2);

  const auto dyn = BuildPlan(*c.module, PlanInputs::Dynamic(dynr));
  const auto combo = BuildPlan(*c.module, PlanInputs::DynamicStatic(dynr, stat));
  const auto stat_plan = BuildPlan(*c.module, PlanInputs::Static(stat));
  const auto all = BuildPlan(*c.module, PlanInputs::AllBranches());
  for (size_t i = 0; i < n; ++i) {
    if (dyn.Instrumented(static_cast<i32>(i))) {
      EXPECT_TRUE(combo.Instrumented(static_cast<i32>(i)));
    }
    EXPECT_TRUE(all.Instrumented(static_cast<i32>(i)));
  }
  EXPECT_LE(dyn.NumInstrumented(), combo.NumInstrumented());
  EXPECT_LE(combo.NumInstrumented(), stat_plan.NumInstrumented() + 1);
}

TEST(RecorderTest, RecordsOnlyPlannedBranches) {
  Compiled c = SixBranchModule();
  InstrumentationPlan plan;
  plan.method = InstrumentMethod::kDynamic;
  plan.branches = DenseBitset(c.module->branches.size());
  plan.branches.Set(0);

  BranchTraceRecorder recorder(plan);
  recorder.OnBranch(0, true, kNoExpr);
  recorder.OnBranch(1, false, kNoExpr);
  recorder.OnBranch(0, false, kNoExpr);
  const BitVec log = recorder.TakeLog();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log.GetBit(0));
  EXPECT_FALSE(log.GetBit(1));
}

TEST(RecorderTest, FlushesEveryFourKilobytes) {
  Compiled c = SixBranchModule();
  InstrumentationPlan plan;
  plan.branches = DenseBitset(c.module->branches.size());
  plan.branches.Set(0);
  BranchTraceRecorder recorder(plan);
  const size_t bits = 4096 * 8 * 2 + 5;  // Two full pages plus a partial.
  for (size_t i = 0; i < bits; ++i) {
    recorder.RecordBit(i % 3 == 0);
  }
  EXPECT_EQ(recorder.flushes(), 2u);
  const BitVec log = recorder.TakeLog();
  EXPECT_EQ(log.size(), bits);
  EXPECT_EQ(recorder.flushes(), 3u);
  for (size_t i = 0; i < bits; i += 1000) {
    EXPECT_EQ(log.GetBit(i), i % 3 == 0) << i;
  }
  EXPECT_EQ(recorder.bytes_logged(), (bits + 7) / 8);
}

TEST(RecorderTest, EndToEndBitsMatchExecution) {
  // Record a run, then check the log length equals the number of
  // instrumented branch executions.
  Compiled c = SixBranchModule();
  const InstrumentationPlan plan = BuildPlan(*c.module, PlanInputs::AllBranches());
  BranchTraceRecorder recorder(plan);
  InstrumentedExecCounter counter(plan);
  Interp interp(*c.module, InterpOptions{});
  interp.AddObserver(&recorder);
  interp.AddObserver(&counter);
  const RunResult r = interp.Run({"prog", "zzz"}, {});
  EXPECT_EQ(r.status, RunResult::Status::kExit);
  const BitVec log = recorder.TakeLog();
  EXPECT_EQ(log.size(), counter.count());
  EXPECT_EQ(log.size(), r.stats.branch_execs);  // all-branches plan.
  EXPECT_GT(log.size(), 0u);
}

}  // namespace
}  // namespace retrace
