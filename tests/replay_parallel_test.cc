// Tests for the multi-worker replay scheduler: sequential parity,
// multi-worker reproduction of seeded crash scenarios, lossless stats
// aggregation, and the arena-portable constraint plumbing underneath.
#include <gtest/gtest.h>

#include <numeric>

#include "src/core/pipeline.h"
#include "src/support/workqueue.h"
#include "tests/testutil.h"

namespace retrace {
namespace {

// Crashes iff argv[1] starts with "k9" and argv[2][0] > '5'.
constexpr const char* kGuardedCrash = R"(
int main(int argc, char **argv) {
  if (argc < 3) { return 1; }
  if (argv[1][0] == 'k') {
    if (argv[1][1] == '9') {
      if (argv[2][0] > '5') {
        crash(13);
      }
    }
  }
  return 0;
}
)";

// A wider search space: four independent byte guards, so the frontier
// holds enough pending sets for stealing and dedup to actually engage.
constexpr const char* kDeepGuardedCrash = R"(
int main(int argc, char **argv) {
  if (argc < 3) { return 1; }
  int hits = 0;
  if (argv[1][0] == 'a') { hits = hits + 1; }
  if (argv[1][1] == 'b') { hits = hits + 1; }
  if (argv[1][2] == 'c') { hits = hits + 1; }
  if (argv[2][0] > 'm') { hits = hits + 1; }
  if (hits == 4) { crash(7); }
  return 0;
}
)";

std::unique_ptr<Pipeline> MustBuild(std::string_view app,
                                    const std::vector<std::string>& libs = {}) {
  auto r = Pipeline::FromSources(app, libs);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().ToString());
  return r.take();
}

InputSpec GuardedCrashInput() {
  InputSpec spec;
  spec.argv = {"prog", "k9", "7"};
  spec.world.listen_fd = -1;
  return spec;
}

InputSpec DeepGuardedCrashInput() {
  InputSpec spec;
  spec.argv = {"prog", "abc", "z"};
  spec.world.listen_fd = -1;
  return spec;
}

void ExpectStatsEqual(const ReplayStats& a, const ReplayStats& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.solver_calls, b.solver_calls);
  EXPECT_EQ(a.aborts_forced_direction, b.aborts_forced_direction);
  EXPECT_EQ(a.aborts_concrete_mismatch, b.aborts_concrete_mismatch);
  EXPECT_EQ(a.aborts_log_exhausted, b.aborts_log_exhausted);
  EXPECT_EQ(a.crashes_wrong_site, b.crashes_wrong_site);
  EXPECT_EQ(a.pending_peak, b.pending_peak);
}

// (a) num_workers = 1 must be bit-identical to the legacy sequential
// engine: same witness, same stats, run after run.
TEST(ReplayParallelTest, SingleWorkerMatchesLegacyPath) {
  auto pipeline = MustBuild(kGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(GuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig legacy;
  legacy.seed = 11;  // num_workers defaults to 1: the sequential engine.
  const ReplayResult base = pipeline->Reproduce(user.report, plan, legacy).take();
  ASSERT_TRUE(base.reproduced);

  ReplayConfig explicit_one = legacy;
  explicit_one.num_workers = 1;
  const ReplayResult again = pipeline->Reproduce(user.report, plan, explicit_one).take();
  ASSERT_TRUE(again.reproduced);

  EXPECT_EQ(base.witness_cells, again.witness_cells);
  EXPECT_EQ(base.witness_argv, again.witness_argv);
  ExpectStatsEqual(base.stats, again.stats);

  // The single worker entry mirrors the totals losslessly.
  ASSERT_EQ(again.stats.per_worker.size(), 1u);
  const ReplayWorkerStats& w = again.stats.per_worker[0];
  EXPECT_EQ(w.runs, again.stats.runs);
  EXPECT_EQ(w.solver_calls, again.stats.solver_calls);
  EXPECT_EQ(w.aborts_forced_direction, again.stats.aborts_forced_direction);
  EXPECT_EQ(w.aborts_concrete_mismatch, again.stats.aborts_concrete_mismatch);
  EXPECT_EQ(w.aborts_log_exhausted, again.stats.aborts_log_exhausted);
  EXPECT_EQ(w.crashes_wrong_site, again.stats.crashes_wrong_site);
}

// (b) num_workers = 4 reproduces each seeded crash scenario, across
// instrumentation plans, and the witness still verifies.
TEST(ReplayParallelTest, FourWorkersReproduceAllBranches) {
  auto pipeline = MustBuild(kGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(GuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig config;
  config.num_workers = 4;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
  ASSERT_TRUE(replay.reproduced);
  ASSERT_GE(replay.witness_argv.size(), 3u);
  EXPECT_EQ(replay.witness_argv[1][0], 'k');
  EXPECT_EQ(replay.witness_argv[1][1], '9');
  EXPECT_GT(replay.witness_argv[2][0], '5');
  EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));
  EXPECT_EQ(replay.stats.per_worker.size(), 4u);
}

TEST(ReplayParallelTest, FourWorkersReproduceWithDynamicPlan) {
  auto pipeline = MustBuild(kGuardedCrash);
  AnalysisConfig dyn_config;
  dyn_config.max_runs = 32;
  InputSpec benign;
  benign.argv = {"prog", "ab", "c"};
  benign.world.listen_fd = -1;
  const AnalysisResult dyn = pipeline->RunDynamicAnalysis(benign, dyn_config);
  const InstrumentationPlan plan = pipeline->MakePlan(PlanInputs::Dynamic(dyn));

  const auto user = pipeline->RecordUserRun(GuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());
  ReplayConfig config;
  config.num_workers = 4;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
  ASSERT_TRUE(replay.reproduced);
  EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));
}

TEST(ReplayParallelTest, FourWorkersReproduceDeepCrash) {
  auto pipeline = MustBuild(kDeepGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(DeepGuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig config;
  config.num_workers = 4;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
  ASSERT_TRUE(replay.reproduced);
  EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));
}

TEST(ReplayParallelTest, FourWorkersReproduceSyscallBug) {
  constexpr const char* kReadBug = R"(
    int main() {
      char buf[64];
      int n = read(0, buf, 60);
      if (n == 13) {
        if (buf[0] == 'Z') { crash(2); }
      }
      return 0;
    }
  )";
  auto pipeline = MustBuild(kReadBug);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  InputSpec spec;
  spec.argv = {"prog"};
  spec.world.listen_fd = -1;
  spec.world.stdin_stream = 0;
  StreamShape stream;
  stream.name = "stdin";
  const std::string data = "Zsecretsecret";  // 13 bytes.
  stream.bytes.assign(data.begin(), data.end());
  stream.length = 13;
  spec.world.streams.push_back(stream);

  const auto user = pipeline->RecordUserRun(spec, plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig config;
  config.num_workers = 4;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
  ASSERT_TRUE(replay.reproduced);
}

TEST(ReplayParallelTest, PortfolioPickReproduces) {
  auto pipeline = MustBuild(kDeepGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(DeepGuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig config;
  config.num_workers = 4;
  config.pick = ReplayConfig::Pick::kPortfolio;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
  ASSERT_TRUE(replay.reproduced);
  EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));
}

// ----- Search-quality layer: direction pick, pruning, corpus, promotion -----

// Pick::kDirection must reproduce sequentially and in a fleet — it is a
// different pop order over the same sound frontier.
TEST(ReplayParallelTest, DirectionPickReproduces) {
  auto pipeline = MustBuild(kDeepGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(DeepGuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  for (const u32 workers : {1u, 4u}) {
    ReplayConfig config;
    config.num_workers = workers;
    config.pick = ReplayConfig::Pick::kDirection;
    const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
    ASSERT_TRUE(replay.reproduced) << workers << " workers";
    EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));
    // All completed runs are attributed to the direction discipline.
    const size_t disc = static_cast<size_t>(SearchDiscipline::kDirection);
    EXPECT_GT(replay.stats.discipline_runs[disc], 0u);
    EXPECT_EQ(replay.stats.discipline_on_log[disc] > 0,
              replay.stats.aborts_forced_direction > 0);
  }
}

// Prune soundness: two identical corpus seeds make two workers walk the
// same path and publish structurally identical pendings — the index must
// drop the duplicates (pendings_pruned > 0) WITHOUT losing the crash:
// everything a pruned pending could reach stays reachable through its
// subsumer.
TEST(ReplayParallelTest, SubsumptionPruneKeepsCrashReachable) {
  auto pipeline = MustBuild(kDeepGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(DeepGuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig config;
  config.num_workers = 2;
  config.prune_subsumed = true;
  // One benign input, twice: worker 0 runs seed 0, worker 1 runs the
  // identical seed 1, so whoever publishes second collides on every set.
  const std::vector<i64> benign(16, 120);
  config.corpus_seeds = {benign, benign};
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
  ASSERT_TRUE(replay.reproduced);
  EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));
  EXPECT_GT(replay.stats.pendings_pruned, 0u);
  // Every worker runs its corpus slice before touching the frontier, and
  // the first crash can only land in someone's frontier phase — so at
  // least one worker completed its corpus run (the second may have been
  // stopped by first-crash-wins mid-phase).
  EXPECT_GE(replay.stats.corpus_runs, 1u);
  // Per-worker pruning aggregates losslessly.
  u64 pruned = 0;
  for (const ReplayWorkerStats& w : replay.stats.per_worker) {
    pruned += w.pendings_pruned;
  }
  EXPECT_EQ(replay.stats.pendings_pruned, pruned);
}

// Sequential pruning: same soundness story on the single-worker loop
// (the arena-side fingerprint chain must agree with the portable one).
TEST(ReplayParallelTest, SequentialPruneStillReproduces) {
  auto pipeline = MustBuild(kDeepGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(DeepGuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig config;
  config.prune_subsumed = true;
  const std::vector<i64> benign(16, 120);
  config.corpus_seeds = {benign, benign};  // Identical runs back to back.
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
  ASSERT_TRUE(replay.reproduced);
  EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));
  // The second identical corpus run re-publishes the first one's entire
  // flippable set: every one of those duplicates must have been pruned.
  EXPECT_GT(replay.stats.pendings_pruned, 0u);
}

// Corpus seeding: handing the fleet a witness-adjacent input makes the
// search fall out of the corpus run (or a short push off it) — and the
// runs are counted as corpus_runs.
TEST(ReplayParallelTest, CorpusSeedShortCircuitsSearch) {
  auto pipeline = MustBuild(kDeepGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(DeepGuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  // Obtain a known witness, then replay with it as a corpus seed.
  ReplayConfig warm;
  warm.num_workers = 4;
  const ReplayResult baseline = pipeline->Reproduce(user.report, plan, warm).take();
  ASSERT_TRUE(baseline.reproduced);

  {
    // Sequential: one initial random run, then the corpus run crashes —
    // a cap of 3 is far too small for a cold search, so reproducing at
    // all proves the seed did it.
    ReplayConfig config;
    config.max_runs = 3;
    config.corpus_seeds = {baseline.witness_cells};
    const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
    ASSERT_TRUE(replay.reproduced);
    EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));
    EXPECT_EQ(replay.stats.corpus_runs, 1u);
  }
  {
    // Fleet: one witness seed per worker — whichever corpus run lands
    // first wins, and since the winning run IS a corpus run (counted
    // before it starts), corpus_runs >= 1 deterministically.
    ReplayConfig config;
    config.num_workers = 4;
    config.corpus_seeds = {baseline.witness_cells, baseline.witness_cells,
                           baseline.witness_cells, baseline.witness_cells};
    const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
    ASSERT_TRUE(replay.reproduced);
    EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));
    EXPECT_GE(replay.stats.corpus_runs, 1u);
  }
}

// A crash-free search under Pick::kPortfolio with more than four workers
// runs the adaptive tail: once any fixed discipline has enough
// attributed runs, adaptive workers promote themselves onto the best
// on-log earner and the switch is counted.
TEST(ReplayParallelTest, PortfolioPromotesAdaptiveWorkers) {
  // Sixteen independent guard *locations* (unrolled, so each can be
  // logged or left unlogged independently): the unlogged majority keeps
  // the frontier wide enough to outlive many promotion intervals
  // without ever reproducing (the report's crash site is made
  // unreachable below).
  constexpr const char* kWideSearch = R"(
int main(int argc, char **argv) {
  if (argc < 2) { return 1; }
  int hits = 0;
  if (argv[1][0] == 'a') { hits = hits + 1; }
  if (argv[1][1] == 'b') { hits = hits + 1; }
  if (argv[1][2] == 'c') { hits = hits + 1; }
  if (argv[1][3] == 'd') { hits = hits + 1; }
  if (argv[1][4] == 'e') { hits = hits + 1; }
  if (argv[1][5] == 'f') { hits = hits + 1; }
  if (argv[1][6] == 'g') { hits = hits + 1; }
  if (argv[1][7] == 'h') { hits = hits + 1; }
  if (argv[1][8] == 'i') { hits = hits + 1; }
  if (argv[1][9] == 'j') { hits = hits + 1; }
  if (argv[1][10] == 'k') { hits = hits + 1; }
  if (argv[1][11] == 'l') { hits = hits + 1; }
  if (argv[1][12] == 'm') { hits = hits + 1; }
  if (argv[1][13] == 'n') { hits = hits + 1; }
  if (argv[1][14] == 'o') { hits = hits + 1; }
  if (argv[1][15] == 'p') { hits = hits + 1; }
  if (hits == 16) { crash(3); }
  return 0;
}
)";
  auto pipeline = MustBuild(kWideSearch);
  // A *partial* plan — the paper's actual regime: a third of the
  // branches logged, the rest unlogged symbolic (case 1). The unlogged
  // guards keep the frontier wide, while the logged ones produce
  // forced-direction (2b) aborts — the nonzero on-log rates promotion
  // ranks by. (All-branches plans have no case-1 branches and drain in
  // a few dozen runs; empty plans never abort 2b, and an all-zero rate
  // field must NOT promote — it would collapse the portfolio's
  // randomized hedge onto DFS.)
  InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  plan.branches = DenseBitset(pipeline->module().branches.size());
  for (size_t b = 0; b < pipeline->module().branches.size(); b += 3) {
    plan.branches.Set(b);
  }
  InputSpec spec;
  spec.argv = {"prog", "abcdefghijklmnop"};
  spec.world.listen_fd = -1;
  const auto user = pipeline->RecordUserRun(spec, plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  // Redirect the reported crash site so no run ever "reproduces": the
  // fleet searches until the run cap, which is what promotion needs.
  BugReport report = user.report;
  report.crash.loc.line += 1000;

  ReplayConfig config;
  config.num_workers = 6;  // Workers 4 and 5 are adaptive.
  config.pick = ReplayConfig::Pick::kPortfolio;
  config.max_runs = 2000;
  const ReplayResult replay = pipeline->Reproduce(report, plan, config).take();
  EXPECT_FALSE(replay.reproduced);
  EXPECT_GE(replay.stats.promotions, 1u);
  // Attribution covers the fleet: every completed run landed in exactly
  // one discipline bucket, and no bucket exceeds the total.
  u64 attributed = 0;
  for (const u64 runs : replay.stats.discipline_runs) {
    attributed += runs;
  }
  EXPECT_GT(attributed, 0u);
  EXPECT_LE(attributed, replay.stats.runs);
}

// (c) Aggregation is lossless: every counter in the aggregate equals the
// sum over per-worker entries — every abort is counted exactly once.
TEST(ReplayParallelTest, StatsAggregateLosslessly) {
  auto pipeline = MustBuild(kDeepGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(DeepGuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig config;
  config.num_workers = 4;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
  const ReplayStats& s = replay.stats;
  ASSERT_EQ(s.per_worker.size(), 4u);

  auto sum = [&](auto field) {
    return std::accumulate(s.per_worker.begin(), s.per_worker.end(), u64{0},
                           [&](u64 acc, const ReplayWorkerStats& w) { return acc + field(w); });
  };
  EXPECT_EQ(s.runs, sum([](const ReplayWorkerStats& w) { return w.runs; }));
  EXPECT_EQ(s.solver_calls, sum([](const ReplayWorkerStats& w) { return w.solver_calls; }));
  EXPECT_EQ(s.aborts_forced_direction,
            sum([](const ReplayWorkerStats& w) { return w.aborts_forced_direction; }));
  EXPECT_EQ(s.aborts_concrete_mismatch,
            sum([](const ReplayWorkerStats& w) { return w.aborts_concrete_mismatch; }));
  EXPECT_EQ(s.aborts_log_exhausted,
            sum([](const ReplayWorkerStats& w) { return w.aborts_log_exhausted; }));
  EXPECT_EQ(s.crashes_wrong_site,
            sum([](const ReplayWorkerStats& w) { return w.crashes_wrong_site; }));
  EXPECT_EQ(s.steals, sum([](const ReplayWorkerStats& w) { return w.steals; }));
  EXPECT_EQ(s.dedup_skips, sum([](const ReplayWorkerStats& w) { return w.dedup_skips; }));
  EXPECT_EQ(s.cancelled_runs,
            sum([](const ReplayWorkerStats& w) { return w.cancelled_runs; }));
  // Every run was admitted against the global cap exactly once.
  EXPECT_LE(s.runs, ReplayConfig{}.max_runs);
}

// The run cap is global, not per worker.
TEST(ReplayParallelTest, RunCapIsGlobal) {
  auto pipeline = MustBuild(kGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(GuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig config;
  config.num_workers = 4;
  config.max_runs = 2;
  config.seed = 5;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
  EXPECT_LE(replay.stats.runs, 2u);
  if (!replay.reproduced) {
    EXPECT_TRUE(replay.budget_exhausted);
  }
}

// ----- Arena-portable constraint plumbing -----

TEST(ReplayParallelTest, PortableTraceRoundTrip) {
  ExprArena source;
  const ExprRef x = source.MkVar(0);
  const ExprRef y = source.MkVar(1);
  const ExprRef sum = source.MkBin(ExprOp::kAdd, x, y);
  const ExprRef cmp = source.MkBin(ExprOp::kGt, sum, source.MkConst(10));
  const ExprRef odd = source.MkBin(ExprOp::kAnd, x, source.MkConst(1));
  std::vector<Constraint> constraints{{cmp, true}, {odd, false}};

  const PortableTrace portable = ExportTrace(source, constraints);
  ASSERT_EQ(portable.constraints.size(), 2u);

  ExprArena target;
  target.MkVar(7);  // Pre-populate so refs differ from the source arena.
  const std::vector<Constraint> imported =
      ImportConstraints(portable, portable.constraints.size(), /*negate_last=*/false, &target);
  ASSERT_EQ(imported.size(), 2u);

  // Same semantics under identical assignments, in both arenas.
  const std::vector<i64> model{6, 7};
  EXPECT_EQ(source.Eval(cmp, model), target.Eval(imported[0].expr, model));
  EXPECT_EQ(source.Eval(odd, model), target.Eval(imported[1].expr, model));
  EXPECT_FALSE(imported[1].want_true);

  // negate_last flips only the last constraint.
  const std::vector<Constraint> negated =
      ImportConstraints(portable, portable.constraints.size(), /*negate_last=*/true, &target);
  EXPECT_TRUE(negated[1].want_true);
  EXPECT_EQ(negated[1].expr, imported[1].expr);
}

TEST(ReplayParallelTest, FingerprintStableAcrossArenas) {
  // Build the same structural constraints in two arenas with different
  // interning histories: fingerprints must match (the fleet-wide dedup
  // key), and a negation must change them.
  auto build = [](ExprArena* arena, int noise) {
    for (int i = 0; i < noise; ++i) {
      arena->MkVar(100 + i);  // Shift raw refs between the two arenas.
    }
    const ExprRef x = arena->MkVar(0);
    const ExprRef k = arena->MkConst(42);
    return std::vector<Constraint>{{arena->MkBin(ExprOp::kEq, x, k), true}};
  };
  ExprArena a;
  ExprArena b;
  const std::vector<Constraint> ca = build(&a, 0);
  const std::vector<Constraint> cb = build(&b, 5);

  const PortableTrace pa = ExportTrace(a, ca);
  const PortableTrace pb = ExportTrace(b, cb);
  EXPECT_EQ(FingerprintConstraints(pa, 1, false), FingerprintConstraints(pb, 1, false));
  EXPECT_NE(FingerprintConstraints(pa, 1, false), FingerprintConstraints(pa, 1, true));
}

// ----- Work-stealing frontier -----

TEST(ReplayParallelTest, WorkQueueOwnerOrderAndStealing) {
  WorkStealingQueue<int> queue(2);
  queue.Push(0, 1);
  queue.Push(0, 2);
  queue.Push(0, 3);

  int out = 0;
  bool stolen = false;
  // Owner DFS pop: newest first.
  ASSERT_TRUE(queue.Pop(0, PopOrder::kNewestFirst, &out, &stolen));
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(stolen);
  // Thief steals the oldest entry of the victim's deque.
  ASSERT_TRUE(queue.Pop(1, PopOrder::kNewestFirst, &out, &stolen));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(stolen);
  ASSERT_TRUE(queue.Pop(0, PopOrder::kOldestFirst, &out, &stolen));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(stolen);
  EXPECT_EQ(queue.peak(), 3u);
}

TEST(ReplayParallelTest, WorkQueueDrainTerminates) {
  // A single worker popping an empty frontier must get "done", not block.
  WorkStealingQueue<int> queue(1);
  int out = 0;
  bool stolen = false;
  EXPECT_FALSE(queue.Pop(0, PopOrder::kNewestFirst, &out, &stolen));
}

// After first-crash-wins Close(), a donor pump must not carve pendings
// for peers: the search is over, exporting would be wasted wire traffic
// and a misleading pendings_exported count.
TEST(ReplayParallelTest, WorkQueueRefusesExportWhenClosed) {
  WorkStealingQueue<int> queue(2);
  queue.Push(0, 1);
  queue.Push(0, 2);
  queue.Push(0, 3);
  queue.Push(1, 4);

  std::vector<int> out;
  EXPECT_EQ(queue.ExportDeepest(/*max_items=*/2, /*min_keep=*/0, &out), 2u);
  EXPECT_EQ(out.size(), 2u);

  queue.Close();
  out.clear();
  EXPECT_EQ(queue.ExportDeepest(/*max_items=*/8, /*min_keep=*/0, &out), 0u);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace retrace
