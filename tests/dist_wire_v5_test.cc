// Wire v5 tests: the failure-handling additions to the distributed
// replay protocol. kHeartbeat codec round trip and truncation, the new
// graceful-degradation stats fields riding in every stats payload, and
// the heartbeat config knobs shipped (and range-validated) in kJob.
#include <gtest/gtest.h>

#include <vector>

#include "src/dist/wire.h"

namespace retrace {
namespace {

std::vector<u8> OneFrame(WireMsg type, const std::vector<u8>& payload) {
  std::vector<u8> bytes;
  AppendFrame(type, payload, &bytes);
  return bytes;
}

// ----- kHeartbeat -----

TEST(DistWireV5Test, HeartbeatRoundTripsByteExactly) {
  WireHeartbeat beat;
  beat.seq = 0xfeedfacecafe0042ull;

  WireWriter w;
  EncodeHeartbeat(beat, &w);
  WireReader r(w.buf().data(), w.buf().size());
  WireHeartbeat decoded;
  ASSERT_TRUE(DecodeHeartbeat(&r, &decoded));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(decoded.seq, beat.seq);

  // Byte-exact: re-encoding the decoded beat reproduces the stream.
  WireWriter w2;
  EncodeHeartbeat(decoded, &w2);
  EXPECT_EQ(w2.buf(), w.buf());
}

TEST(DistWireV5Test, HeartbeatDecodeRejectsEveryTruncation) {
  WireWriter w;
  EncodeHeartbeat(WireHeartbeat{77}, &w);
  for (size_t cut = 0; cut < w.buf().size(); ++cut) {
    WireReader r(w.buf().data(), cut);
    WireHeartbeat decoded;
    EXPECT_FALSE(DecodeHeartbeat(&r, &decoded)) << "cut " << cut;
  }
}

TEST(DistWireV5Test, HeartbeatFrameSurvivesFraming) {
  WireWriter w;
  EncodeHeartbeat(WireHeartbeat{9}, &w);
  const std::vector<u8> stream = OneFrame(WireMsg::kHeartbeat, w.buf());

  FrameParser parser;
  parser.Append(stream.data(), stream.size());
  WireFrame frame;
  ASSERT_EQ(parser.Next(&frame), FrameStatus::kFrame);
  EXPECT_EQ(frame.type, WireMsg::kHeartbeat);
  WireReader r(frame.payload.data(), frame.payload.size());
  WireHeartbeat decoded;
  ASSERT_TRUE(DecodeHeartbeat(&r, &decoded));
  EXPECT_EQ(decoded.seq, 9u);
}

TEST(DistWireV5Test, TruncatedHeartbeatFramesAreNeverAccepted) {
  WireWriter w;
  EncodeHeartbeat(WireHeartbeat{12345}, &w);
  const std::vector<u8> stream = OneFrame(WireMsg::kHeartbeat, w.buf());
  for (size_t cut = 0; cut < stream.size(); ++cut) {
    FrameParser parser;
    parser.Append(stream.data(), cut);
    WireFrame frame;
    EXPECT_EQ(parser.Next(&frame), FrameStatus::kNeedMore) << "cut " << cut;
  }
}

// ----- Failure stats in kResult -----

TEST(DistWireV5Test, ShardResultCarriesFailureStats) {
  WireShardResult shard;
  shard.result.reproduced = false;
  shard.result.budget_exhausted = true;
  shard.result.stats.runs = 41;
  shard.result.stats.shards_lost = 3;
  shard.result.stats.pendings_recovered = 129;
  shard.result.stats.heartbeats_missed = 2;
  shard.result.stats.fallback_inprocess = true;
  shard.pendings_seeded = 8;

  WireWriter w;
  EncodeShardResult(shard, &w);
  WireReader r(w.buf().data(), w.buf().size());
  WireShardResult decoded;
  ASSERT_TRUE(DecodeShardResult(&r, &decoded));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(decoded.result.stats.runs, 41u);
  EXPECT_EQ(decoded.result.stats.shards_lost, 3u);
  EXPECT_EQ(decoded.result.stats.pendings_recovered, 129u);
  EXPECT_EQ(decoded.result.stats.heartbeats_missed, 2u);
  EXPECT_TRUE(decoded.result.stats.fallback_inprocess);
  EXPECT_EQ(decoded.pendings_seeded, 8u);

  // Byte-exact both ways: decode then re-encode is the identity.
  WireWriter w2;
  EncodeShardResult(decoded, &w2);
  EXPECT_EQ(w2.buf(), w.buf());
}

TEST(DistWireV5Test, ShardResultFailureStatsDefaultToZero) {
  WireShardResult shard;
  shard.result.stats.runs = 1;

  WireWriter w;
  EncodeShardResult(shard, &w);
  WireReader r(w.buf().data(), w.buf().size());
  WireShardResult decoded;
  ASSERT_TRUE(DecodeShardResult(&r, &decoded));
  EXPECT_EQ(decoded.result.stats.shards_lost, 0u);
  EXPECT_EQ(decoded.result.stats.pendings_recovered, 0u);
  EXPECT_EQ(decoded.result.stats.heartbeats_missed, 0u);
  EXPECT_FALSE(decoded.result.stats.fallback_inprocess);
}

TEST(DistWireV5Test, ShardResultDecodeRejectsEveryTruncation) {
  WireShardResult shard;
  shard.result.stats.runs = 7;
  shard.result.stats.shards_lost = 1;
  shard.result.stats.fallback_inprocess = true;
  WireWriter w;
  EncodeShardResult(shard, &w);
  for (size_t cut = 0; cut < w.buf().size(); ++cut) {
    WireReader r(w.buf().data(), cut);
    WireShardResult decoded;
    EXPECT_FALSE(DecodeShardResult(&r, &decoded)) << "cut " << cut;
  }
}

// ----- Heartbeat knobs in kJob -----

WireJob MakeJob() {
  WireJob job;
  job.config.max_runs = 10;
  job.config.program.app = "int main() { return 0; }";
  job.plan.method = InstrumentMethod::kDynamic;
  job.plan.branches = DenseBitset(4);
  job.plan.branches.Set(1);
  job.report.method = InstrumentMethod::kDynamic;
  job.report.branch_log.PushBit(true);
  job.report.crash.kind = CrashSite::Kind::kExplicit;
  job.report.crash.func = 0;
  job.report.crash.loc = SourceLoc{0, 1, 1};
  job.report.shape.argv = {"prog"};
  return job;
}

std::vector<u8> EncodeJobPayload(const WireJob& job) {
  WireWriter w;
  EncodeJob(job, &w);
  return w.Take();
}

TEST(DistWireV5Test, JobShipsHeartbeatKnobs) {
  WireJob job = MakeJob();
  job.config.heartbeat_interval_ms = 250;
  job.config.heartbeat_timeout_ms = 30'000;

  const std::vector<u8> payload = EncodeJobPayload(job);
  WireReader r(payload.data(), payload.size());
  WireJob decoded;
  ASSERT_TRUE(DecodeJob(&r, &decoded));
  EXPECT_EQ(decoded.config.heartbeat_interval_ms, 250);
  EXPECT_EQ(decoded.config.heartbeat_timeout_ms, 30'000);
  EXPECT_EQ(EncodeJobPayload(decoded), payload);
}

TEST(DistWireV5Test, JobDisabledHeartbeatsRoundTrip) {
  WireJob job = MakeJob();
  job.config.heartbeat_interval_ms = 0;   // 0 = sends disabled.
  job.config.heartbeat_timeout_ms = 0;    // 0 = deadline disabled.

  const std::vector<u8> payload = EncodeJobPayload(job);
  WireReader r(payload.data(), payload.size());
  WireJob decoded;
  ASSERT_TRUE(DecodeJob(&r, &decoded));
  EXPECT_EQ(decoded.config.heartbeat_interval_ms, 0);
  EXPECT_EQ(decoded.config.heartbeat_timeout_ms, 0);
}

TEST(DistWireV5Test, JobDecodeRejectsHostileHeartbeatKnobs) {
  // A listening retrace_shardd decodes kJob straight off the network; a
  // hostile coordinator must not be able to smuggle absurd deadlines.
  const struct {
    i32 interval_ms;
    i32 timeout_ms;
  } bad[] = {
      {-1, 10'000},      // Negative interval.
      {60'001, 10'000},  // Interval above the 60 s cap.
      {100, -1},         // Negative timeout.
      {100, 600'001},    // Timeout above the 10 min cap.
  };
  for (const auto& knobs : bad) {
    WireJob job = MakeJob();
    job.config.heartbeat_interval_ms = knobs.interval_ms;
    job.config.heartbeat_timeout_ms = knobs.timeout_ms;
    const std::vector<u8> payload = EncodeJobPayload(job);
    WireReader r(payload.data(), payload.size());
    WireJob decoded;
    EXPECT_FALSE(DecodeJob(&r, &decoded))
        << "interval=" << knobs.interval_ms << " timeout=" << knobs.timeout_ms;
  }
}

TEST(DistWireV5Test, JobNeverShipsFaultSpec) {
  // Fault injection is a coordinator-local test harness; the spec must
  // not leak to (or survive decode on) a remote daemon.
  WireJob job = MakeJob();
  job.config.fault_spec = "all:close@frame1";

  const std::vector<u8> payload = EncodeJobPayload(job);
  WireReader r(payload.data(), payload.size());
  WireJob decoded;
  decoded.config.fault_spec = "stale-from-last-job";
  ASSERT_TRUE(DecodeJob(&r, &decoded));
  EXPECT_TRUE(decoded.config.fault_spec.empty());

  // And the spec does not change the bytes on the wire at all.
  WireJob clean = MakeJob();
  EXPECT_EQ(EncodeJobPayload(clean), payload);
}

}  // namespace
}  // namespace retrace
