#include <gtest/gtest.h>

#include "src/analysis/static_analyzer.h"
#include "src/concolic/engine.h"
#include "src/workloads/workloads.h"
#include "tests/testutil.h"

namespace retrace {
namespace {

StaticAnalysisResult Analyze(const Compiled& c, bool analyze_library = true) {
  StaticAnalyzer analyzer(*c.module, StaticAnalysisOptions{analyze_library});
  return analyzer.Run();
}

// Returns source lines of branches labeled symbolic.
std::vector<int> SymbolicLines(const Compiled& c, const StaticAnalysisResult& r) {
  std::vector<int> lines;
  for (const BranchInfo& branch : c.module->branches) {
    if (r.symbolic_branches.Test(branch.id)) {
      lines.push_back(branch.loc.line);
    }
  }
  return lines;
}

TEST(StaticAnalysisTest, ArgvBranchIsSymbolic) {
  Compiled c = CompileOrDie(R"(
    int main(int argc, char **argv) {
      if (argv[1][0] == 'a') { return 1; }
      if (argc == 99) { return 2; }
      for (int i = 0; i < 10; i = i + 1) { }
      return 0;
    }
  )");
  const StaticAnalysisResult r = Analyze(c);
  // argv-content branch symbolic; the pure loop branch concrete. argc is
  // shape information, not content, so it is not a taint source.
  EXPECT_EQ(r.symbolic_branches.Count(), 1u);
  EXPECT_EQ(SymbolicLines(c, r)[0], 3);
}

TEST(StaticAnalysisTest, TaintThroughAssignmentsAndArithmetic) {
  Compiled c = CompileOrDie(R"(
    int main(int argc, char **argv) {
      int x = argv[1][0];
      int y = x * 2 + 1;
      if (y > 100) { return 1; }
      return 0;
    }
  )");
  EXPECT_EQ(Analyze(c).symbolic_branches.Count(), 1u);
}

TEST(StaticAnalysisTest, TaintThroughFunctionSummary) {
  Compiled c = CompileOrDie(R"(
    int identity(int v) { return v; }
    int constant(int v) { return 7; }
    int main(int argc, char **argv) {
      if (identity(argv[1][0]) == 'q') { return 1; }
      if (constant(argv[1][0]) == 7) { return 2; }
      return 0;
    }
  )");
  const StaticAnalysisResult r = Analyze(c);
  EXPECT_EQ(r.symbolic_branches.Count(), 1u);
}

TEST(StaticAnalysisTest, ContextSensitivityOnParameterPattern) {
  // check() is called once with tainted and once with clean data; the
  // branch inside it must be symbolic (the tainted context reaches it).
  Compiled c = CompileOrDie(R"(
    int check(int v) { if (v == 5) { return 1; } return 0; }
    int main(int argc, char **argv) {
      int clean = check(3);
      int dirty = check(argv[1][0]);
      return clean + dirty;
    }
  )");
  const StaticAnalysisResult r = Analyze(c);
  EXPECT_EQ(r.symbolic_branches.Count(), 1u);
  EXPECT_GE(r.analyzed_contexts, 3u);  // main + check under two masks.
}

TEST(StaticAnalysisTest, TaintThroughMemory) {
  Compiled c = CompileOrDie(R"(
    char g_buf[16];
    int main(int argc, char **argv) {
      g_buf[0] = argv[1][0];
      if (g_buf[1] == 'x') { return 1; }
      return 0;
    }
  )");
  // Field-insensitive object taint: writing byte 0 taints the whole buffer,
  // so the (dynamically concrete) test of byte 1 is labeled symbolic. This
  // is the deliberate static over-approximation.
  EXPECT_EQ(Analyze(c).symbolic_branches.Count(), 1u);
}

TEST(StaticAnalysisTest, ReadTaintsBuffer) {
  Compiled c = CompileOrDie(R"(
    int main() {
      char buf[8];
      int n = read(0, buf, 7);
      if (buf[0] == 'a') { return 1; }
      if (n <= 0) { return 2; }
      return 0;
    }
  )");
  EXPECT_EQ(Analyze(c).symbolic_branches.Count(), 2u);
}

TEST(StaticAnalysisTest, SelectAndPollReturnsAreTainted) {
  Compiled c = CompileOrDie(R"(
    int main() {
      int fds[2];
      fds[0] = 3;
      fds[1] = 4;
      if (select_fd(fds, 2) >= 0) { return 1; }
      if (poll_signal()) { return 2; }
      return 0;
    }
  )");
  EXPECT_EQ(Analyze(c).symbolic_branches.Count(), 2u);
}

TEST(StaticAnalysisTest, PointerAliasingOverApproximates) {
  Compiled c = CompileOrDie(R"(
    int g_a[4];
    int g_b[4];
    int pick(int which, int *a, int *b, int value) {
      int *p = a;
      if (which) { p = b; }
      p[0] = value;
      return 0;
    }
    int main(int argc, char **argv) {
      pick(0, g_a, g_b, argv[1][0]);
      if (g_b[0] == 9) { return 1; }
      return 0;
    }
  )");
  const StaticAnalysisResult r = Analyze(c);
  // p may point to either array, so storing a tainted value taints both;
  // the g_b test is symbolic statically even though at runtime only g_a
  // received input. (The `which` branch itself is concrete.)
  std::vector<int> lines = SymbolicLines(c, r);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], 12);
}

TEST(StaticAnalysisTest, SoundnessOverDynamic) {
  // Every branch the dynamic analysis proves symbolic must be labeled
  // symbolic by the (full-program) static analysis.
  const WorkloadSources sources = MkdirWorkload();
  Compiled c = CompileOrDie(sources.app, sources.libs);
  const StaticAnalysisResult stat = Analyze(c);

  ExprArena arena;
  ConcolicEngine engine(*c.module, &arena);
  InputSpec spec;
  spec.argv = {"mkdir", "-m", "0755", "somedir"};
  spec.world.listen_fd = -1;
  AnalysisConfig config;
  config.max_runs = 24;
  const AnalysisResult dyn = engine.Analyze(spec, config);

  for (const BranchInfo& branch : c.module->branches) {
    if (dyn.labels[branch.id] == BranchLabel::kSymbolic) {
      EXPECT_TRUE(stat.symbolic_branches.Test(branch.id))
          << "dynamic-symbolic branch " << branch.id << " at line " << branch.loc.line
          << " missed by static analysis";
    }
  }
}

TEST(StaticAnalysisTest, LibraryOpaqueModeMarksAllLibraryBranches) {
  const WorkloadSources sources = UserverWorkload();
  Compiled c = CompileOrDie(sources.app, sources.libs);
  const StaticAnalysisResult opaque = Analyze(c, /*analyze_library=*/false);
  for (const BranchInfo& branch : c.module->branches) {
    if (branch.is_library) {
      EXPECT_TRUE(opaque.symbolic_branches.Test(branch.id));
    }
  }
  // And the opaque mode is at least as conservative overall.
  const StaticAnalysisResult full = Analyze(c, /*analyze_library=*/true);
  EXPECT_GE(opaque.symbolic_branches.Count(), full.symbolic_branches.Count());
}

TEST(StaticAnalysisTest, StaticOverestimatesButNotEverything) {
  const WorkloadSources sources = UserverWorkload();
  Compiled c = CompileOrDie(sources.app, sources.libs);
  const StaticAnalysisResult r = Analyze(c, /*analyze_library=*/false);
  const size_t total = c.module->branches.size();
  const size_t symbolic = r.symbolic_branches.Count();
  EXPECT_GT(symbolic, 0u);
  EXPECT_LT(symbolic, total);  // Some concrete branches must survive.
}

}  // namespace
}  // namespace retrace
