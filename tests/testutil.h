// Shared helpers for retrace tests.
#ifndef RETRACE_TESTS_TESTUTIL_H_
#define RETRACE_TESTS_TESTUTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/ir/lowering.h"
#include "src/lang/parser.h"
#include "src/lang/sema.h"

namespace retrace {

struct Compiled {
  std::unique_ptr<SemaProgram> program;
  std::unique_ptr<IrModule> module;
};

inline Compiled CompileOrDie(std::string_view app, const std::vector<std::string>& libs = {}) {
  std::vector<std::unique_ptr<Unit>> units;
  int index = 0;
  for (const std::string& lib : libs) {
    auto unit = Parse(lib, index++, /*is_library=*/true);
    if (!unit.ok()) {
      ADD_FAILURE() << "library parse error: " << unit.error().ToString();
      return {};
    }
    units.push_back(unit.take());
  }
  auto unit = Parse(app, index++, /*is_library=*/false);
  if (!unit.ok()) {
    ADD_FAILURE() << "parse error: " << unit.error().ToString();
    return {};
  }
  units.push_back(unit.take());
  auto program = Analyze(std::move(units));
  if (!program.ok()) {
    ADD_FAILURE() << "sema error: " << program.error().ToString();
    return {};
  }
  auto module = Lower(*program.value());
  if (!module.ok()) {
    ADD_FAILURE() << "lowering error: " << module.error().ToString();
    return {};
  }
  Compiled out;
  out.program = program.take();
  out.module = module.take();
  return out;
}

}  // namespace retrace

#endif  // RETRACE_TESTS_TESTUTIL_H_
