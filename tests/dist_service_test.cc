// End-to-end tests for the replay service (src/service/): duplicate
// reports cluster onto one search, distinct reports open distinct
// clusters on the same resident service, admission budgets reject at the
// door, health stats expose the cluster table, and the slice-cache
// snapshot warm-starts a restarted daemon. All searches run in-process
// (num_shards = 1) so the suite is fork-free and ThreadSanitizer-clean;
// the standing TCP fleet is covered by the CI service smoke leg.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/pipeline.h"
#include "src/service/report_queue.h"
#include "src/service/service.h"
#include "tests/testutil.h"

namespace retrace {
namespace {

// Crashes iff argv[1] starts with "k9" and argv[2][0] > '5' (the
// miniature scenario shared with the distributed replay tests).
constexpr const char* kGuardedCrash = R"(
int main(int argc, char **argv) {
  if (argc < 3) { return 1; }
  if (argv[1][0] == 'k') {
    if (argv[1][1] == '9') {
      if (argv[2][0] > '5') {
        crash(13);
      }
    }
  }
  return 0;
}
)";

std::unique_ptr<Pipeline> MustBuild() {
  auto r = Pipeline::FromSources(kGuardedCrash, {});
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().ToString());
  return r.take();
}

InputSpec CrashInput(const char* second) {
  InputSpec spec;
  spec.argv = {"prog", "k9", second};
  spec.world.listen_fd = -1;
  return spec;
}

BugReport RecordCrash(Pipeline* pipeline, const InstrumentationPlan& plan,
                      const char* second) {
  auto user = pipeline->RecordUserRun(CrashInput(second), plan, {}).take();
  EXPECT_TRUE(user.result.Crashed());
  return user.report;
}

ServiceConfig InProcessConfig() {
  ServiceConfig config;
  config.replay.num_shards = 1;
  config.replay.num_workers = 2;
  config.replay.solver_cache = true;
  return config;
}

// N identical reports must cost exactly one search: the first admission
// is kFresh and every concurrent duplicate either attaches to the
// in-flight search or reads the solved cluster — never a second search.
TEST(DistServiceTest, DuplicateReportsCostOneSearch) {
  auto pipeline = MustBuild();
  const InstrumentationPlan plan = pipeline->MakePlan(PlanInputs::AllBranches());
  const BugReport report = RecordCrash(pipeline.get(), plan, "7");

  auto service = pipeline->MakeService(plan, InProcessConfig()).take();
  ASSERT_TRUE(service->Start());

  constexpr int kSubmitters = 3;
  std::vector<ServiceVerdict> verdicts(kSubmitters);
  std::vector<std::thread> threads;
  threads.reserve(kSubmitters);
  for (int i = 0; i < kSubmitters; ++i) {
    threads.emplace_back([&, i] { verdicts[i] = service->Submit("alice", report); });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  int fresh = 0;
  for (const ServiceVerdict& v : verdicts) {
    EXPECT_TRUE(v.reproduced);
    EXPECT_EQ(v.cluster, verdicts[0].cluster);
    if (v.origin == VerdictOrigin::kFresh) {
      ++fresh;
    } else {
      EXPECT_TRUE(v.origin == VerdictOrigin::kAttached ||
                  v.origin == VerdictOrigin::kCached);
    }
  }
  EXPECT_EQ(fresh, 1);

  const WireHealthStats health = service->HealthStats();
  EXPECT_EQ(health.reports_ingested, 3u);
  EXPECT_EQ(health.clusters, 1u);
  EXPECT_EQ(health.searches_run, 1u);
  EXPECT_EQ(health.duplicates_attached + health.cached_verdicts, 2u);
  EXPECT_EQ(health.rejected, 0u);
  service->Shutdown();
}

// A second, structurally different report on the same resident service
// opens a second cluster and a second search — and a late duplicate of
// the first cluster still answers from the solved table.
TEST(DistServiceTest, DistinctReportsOpenDistinctClusters) {
  auto pipeline = MustBuild();
  const InstrumentationPlan plan = pipeline->MakePlan(PlanInputs::AllBranches());
  // Same crash site, but a different argv *shape*: report contents are
  // privacy-masked, so only structural differences separate clusters.
  const BugReport first = RecordCrash(pipeline.get(), plan, "7");
  const BugReport second = RecordCrash(pipeline.get(), plan, "77");

  auto service = pipeline->MakeService(plan, InProcessConfig()).take();
  ASSERT_TRUE(service->Start());

  const ServiceVerdict v1 = service->Submit("alice", first);
  const ServiceVerdict v2 = service->Submit("bob", second);
  const ServiceVerdict v3 = service->Submit("carol", first);

  EXPECT_EQ(v1.origin, VerdictOrigin::kFresh);
  EXPECT_TRUE(v1.reproduced);
  EXPECT_EQ(v2.origin, VerdictOrigin::kFresh);
  EXPECT_TRUE(v2.reproduced);
  EXPECT_NE(v1.cluster, v2.cluster);
  EXPECT_EQ(v3.origin, VerdictOrigin::kCached);
  EXPECT_EQ(v3.cluster, v1.cluster);
  EXPECT_TRUE(v3.reproduced);

  const WireHealthStats health = service->HealthStats();
  EXPECT_EQ(health.reports_ingested, 3u);
  EXPECT_EQ(health.clusters, 2u);
  EXPECT_EQ(health.searches_run, 2u);
  EXPECT_EQ(health.cached_verdicts, 1u);
  ASSERT_EQ(health.rows.size(), 2u);
  for (const WireClusterRow& row : health.rows) {
    EXPECT_EQ(row.state, 2u);  // Both solved.
    EXPECT_EQ(row.reproduced, 1u);
  }
  // The cluster that absorbed the duplicate reports two sightings.
  const u64 dup_reports =
      (health.rows[0].fp == v1.cluster ? health.rows[0] : health.rows[1]).reports;
  EXPECT_EQ(dup_reports, 2u);
  service->Shutdown();
}

// Admission budgets reject at the door: a tenant with no budget gets
// kRejected (empty result), and the counters say so.
TEST(DistServiceTest, AdmissionRejectsOverBudgetTenant) {
  auto pipeline = MustBuild();
  const InstrumentationPlan plan = pipeline->MakePlan(PlanInputs::AllBranches());
  const BugReport report = RecordCrash(pipeline.get(), plan, "7");

  ServiceConfig config = InProcessConfig();
  config.per_tenant_cap = 0;
  auto service = pipeline->MakeService(plan, config).take();
  ASSERT_TRUE(service->Start());

  const ServiceVerdict v = service->Submit("spammer", report);
  EXPECT_EQ(v.origin, VerdictOrigin::kRejected);
  EXPECT_FALSE(v.reproduced);
  EXPECT_FALSE(v.result.reproduced);

  const WireHealthStats health = service->HealthStats();
  EXPECT_EQ(health.reports_ingested, 1u);
  EXPECT_EQ(health.rejected, 1u);
  EXPECT_EQ(health.searches_run, 0u);
  service->Shutdown();
}

// The admission queue itself: strict per-tenant budgets that release on
// search completion, and a global capacity that sheds load.
TEST(DistServiceTest, ReportQueueEnforcesBudgets) {
  ReportQueue queue(/*capacity=*/2, /*per_tenant_cap=*/1);
  EXPECT_TRUE(queue.Admit("alice", 1));
  EXPECT_FALSE(queue.Admit("alice", 2));  // Over the tenant cap.
  EXPECT_TRUE(queue.Admit("bob", 3));     // Another tenant is unaffected.
  EXPECT_FALSE(queue.Admit("carol", 4));  // Global capacity reached.
  EXPECT_EQ(queue.depth(), 2u);

  u64 fp = 0;
  std::string tenant;
  ASSERT_TRUE(queue.Pop(&fp, &tenant));
  EXPECT_EQ(fp, 1u);
  EXPECT_EQ(tenant, "alice");
  // Popped but not released: alice stays charged while her search runs.
  EXPECT_FALSE(queue.Admit("alice", 5));
  queue.Release("alice");
  EXPECT_TRUE(queue.Admit("alice", 5));
}

// A restarted daemon warm-starts from the slice-cache snapshot: the
// second service instance loads the entries the first one saved, and the
// same report re-searches with strictly more cache hits than the cold
// run paid.
TEST(DistServiceTest, SnapshotWarmStartsARestartedService) {
  auto pipeline = MustBuild();
  const InstrumentationPlan plan = pipeline->MakePlan(PlanInputs::AllBranches());
  const BugReport report = RecordCrash(pipeline.get(), plan, "7");

  const std::string path = testing::TempDir() + "dist_service_snapshot.bin";
  std::remove(path.c_str());

  ServiceConfig config = InProcessConfig();
  config.snapshot_path = path;

  u64 cold_hits = 0;
  u64 saved_entries = 0;
  {
    auto service = pipeline->MakeService(plan, config).take();
    ASSERT_TRUE(service->Start());
    EXPECT_FALSE(service->snapshot_loaded());  // Nothing on disk yet.
    const ServiceVerdict v = service->Submit("alice", report);
    ASSERT_EQ(v.origin, VerdictOrigin::kFresh);
    ASSERT_TRUE(v.reproduced);
    cold_hits = v.result.stats.slice_sat_hits + v.result.stats.slice_unsat_hits;
    ASSERT_GT(v.result.stats.slices_solved, 0u);
    saved_entries = service->cache().sat_entries() + service->cache().unsat_entries();
    ASSERT_GT(saved_entries, 0u);
    service->Shutdown();  // Saves the snapshot.
  }

  {
    auto service = pipeline->MakeService(plan, config).take();
    ASSERT_TRUE(service->Start());
    EXPECT_TRUE(service->snapshot_loaded());
    // Every entry the first daemon proved is resident before any search.
    EXPECT_EQ(service->cache().sat_entries() + service->cache().unsat_entries(),
              saved_entries);
    EXPECT_EQ(service->HealthStats().snapshot_loaded, 1u);

    // A fresh registry means a fresh search — but against a warm cache:
    // the slices the cold run had to solve are now hits.
    const ServiceVerdict v = service->Submit("alice", report);
    ASSERT_EQ(v.origin, VerdictOrigin::kFresh);
    ASSERT_TRUE(v.reproduced);
    const u64 warm_hits = v.result.stats.slice_sat_hits + v.result.stats.slice_unsat_hits;
    EXPECT_GT(warm_hits, cold_hits);
    service->Shutdown();
  }
  std::remove(path.c_str());
}

// A torn or tampered snapshot must not poison a starting daemon: the
// load is refused, the cache stays empty, and the service still serves.
TEST(DistServiceTest, CorruptSnapshotIsRefusedNotLoaded) {
  auto pipeline = MustBuild();
  const InstrumentationPlan plan = pipeline->MakePlan(PlanInputs::AllBranches());
  const BugReport report = RecordCrash(pipeline.get(), plan, "7");

  const std::string path = testing::TempDir() + "dist_service_bad_snapshot.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "not a snapshot";
  }

  ServiceConfig config = InProcessConfig();
  config.snapshot_path = path;
  auto service = pipeline->MakeService(plan, config).take();
  ASSERT_TRUE(service->Start());
  EXPECT_FALSE(service->snapshot_loaded());
  EXPECT_EQ(service->cache().sat_entries() + service->cache().unsat_entries(), 0u);

  const ServiceVerdict v = service->Submit("alice", report);
  EXPECT_EQ(v.origin, VerdictOrigin::kFresh);
  EXPECT_TRUE(v.reproduced);
  service->Shutdown();
  std::remove(path.c_str());
}

// Submitting against a plan mismatch is a misuse guard at MakeService
// time, not a runtime surprise.
TEST(DistServiceTest, MakeServiceRefusesForeignPlan) {
  auto pipeline = MustBuild();
  InstrumentationPlan foreign = pipeline->MakePlan(PlanInputs::AllBranches());
  foreign.branches = DenseBitset(foreign.branches.size() + 5);
  auto r = pipeline->MakeService(foreign, InProcessConfig());
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace retrace
