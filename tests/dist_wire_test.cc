// Wire-format tests for the distributed replay scheduler: byte-exact
// round trips for every payload codec, truncated/corrupt-frame
// rejection, and version-mismatch refusal.
#include <gtest/gtest.h>

#include <vector>

#include "src/dist/wire.h"
#include "src/support/rng.h"

namespace retrace {
namespace {

PortablePending MakePending(ExprArena* arena, u64 salt) {
  const ExprRef x = arena->MkVar(static_cast<i32>(salt % 5));
  const ExprRef y = arena->MkVar(static_cast<i32>(salt % 5) + 1);
  const ExprRef sum = arena->MkBin(ExprOp::kAdd, x, y);
  const ExprRef cmp = arena->MkBin(ExprOp::kGt, sum, arena->MkConst(static_cast<i64>(salt)));
  const ExprRef odd = arena->MkBin(ExprOp::kAnd, x, arena->MkConst(1));
  std::vector<Constraint> constraints{{cmp, true}, {odd, (salt & 1) != 0}};

  PortablePending pending;
  pending.trace = std::make_shared<const PortableTrace>(ExportTrace(*arena, constraints));
  pending.len = 2;
  pending.negate_last = (salt & 2) != 0;
  // Cover every variable id the trace can mention (ids run to salt%5+1):
  // decode validates var ids against the snapshot sizes.
  pending.seed = std::make_shared<const std::vector<i64>>(
      std::vector<i64>{static_cast<i64>(salt), -7, 300, 4, 5, 6, 7, 8});
  pending.domains = std::make_shared<const std::vector<Interval>>(std::vector<Interval>{
      {0, 255}, {-128, 127}, {0, static_cast<i64>(salt % 100)}, {0, 9}, {0, 9}, {0, 9},
      {0, 9}, {0, 9}});
  pending.priority = salt * 31;
  return pending;
}

std::vector<u8> EncodePendingPayload(const PortablePending& pending) {
  WireWriter w;
  EncodePending(pending, &w);
  return w.Take();
}

TEST(DistWireTest, PendingRoundTripsByteExactly) {
  ExprArena arena;
  const PortablePending original = MakePending(&arena, 42);
  const std::vector<u8> payload = EncodePendingPayload(original);

  WireReader r(payload.data(), payload.size());
  PortablePending decoded;
  ASSERT_TRUE(DecodePending(&r, &decoded));
  EXPECT_EQ(r.remaining(), 0u);

  EXPECT_EQ(decoded.trace->nodes, original.trace->nodes);
  EXPECT_EQ(decoded.trace->constraints, original.trace->constraints);
  EXPECT_EQ(decoded.len, original.len);
  EXPECT_EQ(decoded.negate_last, original.negate_last);
  EXPECT_EQ(*decoded.seed, *original.seed);
  EXPECT_EQ(*decoded.domains, *original.domains);
  EXPECT_EQ(decoded.priority, original.priority);

  // Re-encoding the decoded pending reproduces the exact bytes.
  EXPECT_EQ(EncodePendingPayload(decoded), payload);
}

// Property-style sweep: randomized expression DAGs survive encode ->
// decode -> encode with identical bytes, and the decoded trace
// fingerprints identically (the cross-shard dedup invariant).
TEST(DistWireTest, PendingRoundTripProperty) {
  Rng rng(1234);
  for (int iter = 0; iter < 50; ++iter) {
    ExprArena arena;
    std::vector<ExprRef> pool;
    for (int i = 0; i < 4; ++i) {
      pool.push_back(arena.MkVar(i));
      pool.push_back(arena.MkConst(static_cast<i64>(rng.Next() % 1000) - 500));
    }
    for (int i = 0; i < 12; ++i) {
      const ExprOp op = static_cast<ExprOp>(
          static_cast<u8>(ExprOp::kAdd) +
          rng.Next() % (static_cast<u8>(ExprOp::kGe) - static_cast<u8>(ExprOp::kAdd) + 1));
      const ExprRef a = pool[rng.Next() % pool.size()];
      const ExprRef b = pool[rng.Next() % pool.size()];
      pool.push_back(arena.MkBin(op, a, b));
    }
    std::vector<Constraint> constraints;
    for (int i = 0; i < 3; ++i) {
      constraints.push_back(
          Constraint{pool[pool.size() - 1 - static_cast<size_t>(i)], (rng.Next() & 1) != 0});
    }

    PortablePending pending;
    pending.trace = std::make_shared<const PortableTrace>(ExportTrace(arena, constraints));
    pending.len = 1 + rng.Next() % constraints.size();
    pending.negate_last = (rng.Next() & 1) != 0;
    std::vector<i64> seed;
    for (int i = 0; i < 5; ++i) {
      seed.push_back(static_cast<i64>(rng.Next()));
    }
    pending.seed = std::make_shared<const std::vector<i64>>(std::move(seed));
    std::vector<Interval> domains;
    for (int i = 0; i < 5; ++i) {
      const i64 lo = static_cast<i64>(rng.Next() % 100);
      domains.push_back(Interval{lo, lo + static_cast<i64>(rng.Next() % 100)});
    }
    pending.domains = std::make_shared<const std::vector<Interval>>(std::move(domains));
    pending.priority = rng.Next();

    const std::vector<u8> payload = EncodePendingPayload(pending);
    WireReader r(payload.data(), payload.size());
    PortablePending decoded;
    ASSERT_TRUE(DecodePending(&r, &decoded)) << "iter " << iter;
    EXPECT_EQ(EncodePendingPayload(decoded), payload) << "iter " << iter;
    EXPECT_EQ(FingerprintConstraints(*decoded.trace, decoded.len, decoded.negate_last),
              FingerprintConstraints(*pending.trace, pending.len, pending.negate_last))
        << "iter " << iter;
  }
}

TEST(DistWireTest, VerdictsRoundTrip) {
  WireVerdicts verdicts;
  verdicts.sat.push_back(SliceCache::SatEntry{0xdeadbeefull, {{0, 42}, {3, -1}}});
  verdicts.sat.push_back(SliceCache::SatEntry{0x1234ull, {}});
  verdicts.unsat.push_back(SliceCache::UnsatEntry{77, 78});

  WireWriter w;
  EncodeVerdicts(verdicts, &w);
  WireReader r(w.buf().data(), w.buf().size());
  WireVerdicts decoded;
  ASSERT_TRUE(DecodeVerdicts(&r, &decoded));
  ASSERT_EQ(decoded.sat.size(), 2u);
  EXPECT_EQ(decoded.sat[0].key, 0xdeadbeefull);
  EXPECT_EQ(decoded.sat[0].model,
            (SliceCache::SliceModel{{0, 42}, {3, -1}}));
  EXPECT_TRUE(decoded.sat[1].model.empty());
  ASSERT_EQ(decoded.unsat.size(), 1u);
  EXPECT_EQ(decoded.unsat[0].key, 77u);
  EXPECT_EQ(decoded.unsat[0].check, 78u);
}

TEST(DistWireTest, ShardResultRoundTrip) {
  WireShardResult shard;
  shard.result.reproduced = true;
  shard.result.budget_exhausted = false;
  shard.result.wall_seconds = 1.5;
  shard.result.witness_argv = {"prog", "k9", "7"};
  shard.result.witness_cells = {107, 57, 0};
  shard.result.crash.kind = CrashSite::Kind::kExplicit;
  shard.result.crash.func = 3;
  shard.result.crash.loc = SourceLoc{1, 12, 7};
  shard.result.crash.code = 13;
  shard.result.stats.runs = 99;
  shard.result.stats.slice_sat_hits = 1234;
  shard.result.stats.slice_evictions = 5;
  ReplayWorkerStats worker;
  worker.runs = 50;
  worker.dedup_skips = 4;
  shard.result.stats.per_worker = {worker, worker};
  shard.verdicts_published = 7;
  shard.verdicts_imported = 11;
  shard.pendings_seeded = 3;

  WireWriter w;
  EncodeShardResult(shard, &w);
  WireReader r(w.buf().data(), w.buf().size());
  WireShardResult decoded;
  ASSERT_TRUE(DecodeShardResult(&r, &decoded));
  EXPECT_TRUE(decoded.result.reproduced);
  EXPECT_EQ(decoded.result.witness_argv, shard.result.witness_argv);
  EXPECT_EQ(decoded.result.witness_cells, shard.result.witness_cells);
  EXPECT_TRUE(decoded.result.crash.SameSite(shard.result.crash));
  EXPECT_EQ(decoded.result.crash.code, 13);
  EXPECT_DOUBLE_EQ(decoded.result.wall_seconds, 1.5);
  EXPECT_EQ(decoded.result.stats.runs, 99u);
  EXPECT_EQ(decoded.result.stats.slice_sat_hits, 1234u);
  EXPECT_EQ(decoded.result.stats.slice_evictions, 5u);
  ASSERT_EQ(decoded.result.stats.per_worker.size(), 2u);
  EXPECT_EQ(decoded.result.stats.per_worker[1].runs, 50u);
  EXPECT_EQ(decoded.result.stats.per_worker[1].dedup_skips, 4u);
  EXPECT_EQ(decoded.verdicts_published, 7u);
  EXPECT_EQ(decoded.verdicts_imported, 11u);
  EXPECT_EQ(decoded.pendings_seeded, 3u);
}

// ----- Framing -----

std::vector<u8> OneFrame(WireMsg type, const std::vector<u8>& payload) {
  std::vector<u8> bytes;
  AppendFrame(type, payload, &bytes);
  return bytes;
}

TEST(DistWireTest, FrameParserYieldsCompleteFrames) {
  const std::vector<u8> payload{1, 2, 3, 4, 5};
  std::vector<u8> stream = OneFrame(WireMsg::kVerdicts, payload);
  AppendFrame(WireMsg::kStop, {}, &stream);

  FrameParser parser;
  parser.Append(stream.data(), stream.size());
  WireFrame frame;
  ASSERT_EQ(parser.Next(&frame), FrameStatus::kFrame);
  EXPECT_EQ(frame.type, WireMsg::kVerdicts);
  EXPECT_EQ(frame.payload, payload);
  ASSERT_EQ(parser.Next(&frame), FrameStatus::kFrame);
  EXPECT_EQ(frame.type, WireMsg::kStop);
  EXPECT_TRUE(frame.payload.empty());
  EXPECT_EQ(parser.Next(&frame), FrameStatus::kNeedMore);
}

// Every strict prefix of a frame is "need more", never corrupt and never
// a frame: a shard reading a slow socket must simply wait.
TEST(DistWireTest, TruncatedFramesAreNeverAccepted) {
  const std::vector<u8> stream = OneFrame(WireMsg::kPending, {9, 8, 7, 6, 5, 4, 3, 2, 1});
  for (size_t cut = 0; cut < stream.size(); ++cut) {
    FrameParser parser;
    parser.Append(stream.data(), cut);
    WireFrame frame;
    EXPECT_EQ(parser.Next(&frame), FrameStatus::kNeedMore) << "cut " << cut;
  }
}

TEST(DistWireTest, CorruptPayloadIsRejectedByDigest) {
  const std::vector<u8> payload{10, 20, 30, 40};
  std::vector<u8> stream = OneFrame(WireMsg::kVerdicts, payload);
  stream.back() ^= 0x01;  // Flip one payload bit.

  FrameParser parser;
  parser.Append(stream.data(), stream.size());
  WireFrame frame;
  EXPECT_EQ(parser.Next(&frame), FrameStatus::kCorrupt);
  // Sticky: the stream is not trusted to resynchronize.
  EXPECT_EQ(parser.Next(&frame), FrameStatus::kCorrupt);
}

TEST(DistWireTest, BadMagicIsRejected) {
  std::vector<u8> stream = OneFrame(WireMsg::kStop, {});
  stream[0] ^= 0xff;
  FrameParser parser;
  parser.Append(stream.data(), stream.size());
  WireFrame frame;
  EXPECT_EQ(parser.Next(&frame), FrameStatus::kCorrupt);
}

TEST(DistWireTest, VersionMismatchIsRefused) {
  std::vector<u8> stream = OneFrame(WireMsg::kHello, {1, 2, 3});
  // Bytes 4..5 carry the version (little-endian, after the u32 magic).
  stream[4] = static_cast<u8>((kWireVersion + 1) & 0xff);
  stream[5] = static_cast<u8>(((kWireVersion + 1) >> 8) & 0xff);
  FrameParser parser;
  parser.Append(stream.data(), stream.size());
  WireFrame frame;
  EXPECT_EQ(parser.Next(&frame), FrameStatus::kVersionMismatch);
  EXPECT_EQ(parser.Next(&frame), FrameStatus::kVersionMismatch);
}

// Corrupt *payloads* that pass framing (e.g. a buggy peer rather than a
// damaged stream) must still be rejected by the bounds-checked decoders.
TEST(DistWireTest, DecoderRejectsNonTopologicalTrace) {
  WireWriter w;
  // One node whose child points at itself (must strictly precede).
  w.U32(1);                   // node count
  w.U8(static_cast<u8>(ExprOp::kNeg));
  w.I32(0);                   // a = 0, but this IS node 0 -> invalid.
  w.I32(-1);
  w.I64(0);
  w.U32(0);                   // constraints
  w.U64(0);                   // len
  w.U8(0);                    // negate_last
  w.U32(0);                   // seed
  w.U32(0);                   // domains
  w.U64(0);                   // priority
  WireReader r(w.buf().data(), w.buf().size());
  PortablePending decoded;
  EXPECT_FALSE(DecodePending(&r, &decoded));
}

// A digest-valid frame with a forged variable id must not reach the
// solver: model vectors size to max_var + 1, so a 2^30 id would be a
// multi-GB allocation in the consuming shard.
TEST(DistWireTest, DecoderRejectsVariableIdsBeyondSnapshots) {
  WireWriter w;
  w.U32(1);  // One node: kVar with an id far past the seed/domain sizes.
  w.U8(static_cast<u8>(ExprOp::kVar));
  w.I32(-1);
  w.I32(-1);
  w.I64(1 << 30);
  w.U32(1);  // One constraint over it.
  w.I32(0);
  w.U8(1);
  w.U64(1);  // len
  w.U8(0);   // negate_last
  w.U32(2);  // seed: two cells.
  w.I64(0);
  w.I64(0);
  w.U32(2);  // domains: two cells.
  w.I64(0);
  w.I64(255);
  w.I64(0);
  w.I64(255);
  w.U64(0);  // priority
  WireReader r(w.buf().data(), w.buf().size());
  PortablePending decoded;
  EXPECT_FALSE(DecodePending(&r, &decoded));
}

TEST(DistWireTest, DecoderRejectsAbsurdCounts) {
  WireWriter w;
  w.U32(0x7fffffff);  // Claims ~2B nodes in a 4-byte payload.
  WireReader r(w.buf().data(), w.buf().size());
  PortablePending decoded;
  EXPECT_FALSE(DecodePending(&r, &decoded));

  WireWriter w2;
  w2.U32(0x7fffffff);
  WireReader r2(w2.buf().data(), w2.buf().size());
  WireVerdicts verdicts;
  EXPECT_FALSE(DecodeVerdicts(&r2, &verdicts));
}

TEST(DistWireTest, DecoderRejectsTruncatedPayload) {
  ExprArena arena;
  const std::vector<u8> payload = EncodePendingPayload(MakePending(&arena, 9));
  for (const size_t cut : {payload.size() - 1, payload.size() / 2, size_t{3}}) {
    WireReader r(payload.data(), cut);
    PortablePending decoded;
    EXPECT_FALSE(DecodePending(&r, &decoded)) << "cut " << cut;
  }
}

}  // namespace
}  // namespace retrace
