// Wire-format tests for the distributed replay scheduler: byte-exact
// round trips for every payload codec, truncated/corrupt-frame
// rejection, and version-mismatch refusal.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/dist/wire.h"
#include "src/support/rng.h"

namespace retrace {
namespace {

PortablePending MakePending(ExprArena* arena, u64 salt) {
  const ExprRef x = arena->MkVar(static_cast<i32>(salt % 5));
  const ExprRef y = arena->MkVar(static_cast<i32>(salt % 5) + 1);
  const ExprRef sum = arena->MkBin(ExprOp::kAdd, x, y);
  const ExprRef cmp = arena->MkBin(ExprOp::kGt, sum, arena->MkConst(static_cast<i64>(salt)));
  const ExprRef odd = arena->MkBin(ExprOp::kAnd, x, arena->MkConst(1));
  std::vector<Constraint> constraints{{cmp, true}, {odd, (salt & 1) != 0}};

  PortablePending pending;
  pending.trace = std::make_shared<const PortableTrace>(ExportTrace(*arena, constraints));
  pending.len = 2;
  pending.negate_last = (salt & 2) != 0;
  // Cover every variable id the trace can mention (ids run to salt%5+1):
  // decode validates var ids against the snapshot sizes.
  pending.seed = std::make_shared<const std::vector<i64>>(
      std::vector<i64>{static_cast<i64>(salt), -7, 300, 4, 5, 6, 7, 8});
  pending.domains = std::make_shared<const std::vector<Interval>>(std::vector<Interval>{
      {0, 255}, {-128, 127}, {0, static_cast<i64>(salt % 100)}, {0, 9}, {0, 9}, {0, 9},
      {0, 9}, {0, 9}});
  pending.priority = salt * 31;
  pending.dir_score = salt * 7 + 1;
  return pending;
}

std::vector<u8> EncodePendingPayload(const PortablePending& pending) {
  WireWriter w;
  EncodePending(pending, &w);
  return w.Take();
}

TEST(DistWireTest, PendingRoundTripsByteExactly) {
  ExprArena arena;
  const PortablePending original = MakePending(&arena, 42);
  const std::vector<u8> payload = EncodePendingPayload(original);

  WireReader r(payload.data(), payload.size());
  PortablePending decoded;
  ASSERT_TRUE(DecodePending(&r, &decoded));
  EXPECT_EQ(r.remaining(), 0u);

  EXPECT_EQ(decoded.trace->nodes, original.trace->nodes);
  EXPECT_EQ(decoded.trace->constraints, original.trace->constraints);
  EXPECT_EQ(decoded.len, original.len);
  EXPECT_EQ(decoded.negate_last, original.negate_last);
  EXPECT_EQ(*decoded.seed, *original.seed);
  EXPECT_EQ(*decoded.domains, *original.domains);
  EXPECT_EQ(decoded.priority, original.priority);
  EXPECT_EQ(decoded.dir_score, original.dir_score);

  // Re-encoding the decoded pending reproduces the exact bytes.
  EXPECT_EQ(EncodePendingPayload(decoded), payload);
}

// Property-style sweep: randomized expression DAGs survive encode ->
// decode -> encode with identical bytes, and the decoded trace
// fingerprints identically (the cross-shard dedup invariant).
TEST(DistWireTest, PendingRoundTripProperty) {
  Rng rng(1234);
  for (int iter = 0; iter < 50; ++iter) {
    ExprArena arena;
    std::vector<ExprRef> pool;
    for (int i = 0; i < 4; ++i) {
      pool.push_back(arena.MkVar(i));
      pool.push_back(arena.MkConst(static_cast<i64>(rng.Next() % 1000) - 500));
    }
    for (int i = 0; i < 12; ++i) {
      const ExprOp op = static_cast<ExprOp>(
          static_cast<u8>(ExprOp::kAdd) +
          rng.Next() % (static_cast<u8>(ExprOp::kGe) - static_cast<u8>(ExprOp::kAdd) + 1));
      const ExprRef a = pool[rng.Next() % pool.size()];
      const ExprRef b = pool[rng.Next() % pool.size()];
      pool.push_back(arena.MkBin(op, a, b));
    }
    std::vector<Constraint> constraints;
    for (int i = 0; i < 3; ++i) {
      constraints.push_back(
          Constraint{pool[pool.size() - 1 - static_cast<size_t>(i)], (rng.Next() & 1) != 0});
    }

    PortablePending pending;
    pending.trace = std::make_shared<const PortableTrace>(ExportTrace(arena, constraints));
    pending.len = 1 + rng.Next() % constraints.size();
    pending.negate_last = (rng.Next() & 1) != 0;
    std::vector<i64> seed;
    for (int i = 0; i < 5; ++i) {
      seed.push_back(static_cast<i64>(rng.Next()));
    }
    pending.seed = std::make_shared<const std::vector<i64>>(std::move(seed));
    std::vector<Interval> domains;
    for (int i = 0; i < 5; ++i) {
      const i64 lo = static_cast<i64>(rng.Next() % 100);
      domains.push_back(Interval{lo, lo + static_cast<i64>(rng.Next() % 100)});
    }
    pending.domains = std::make_shared<const std::vector<Interval>>(std::move(domains));
    pending.priority = rng.Next();

    const std::vector<u8> payload = EncodePendingPayload(pending);
    WireReader r(payload.data(), payload.size());
    PortablePending decoded;
    ASSERT_TRUE(DecodePending(&r, &decoded)) << "iter " << iter;
    EXPECT_EQ(EncodePendingPayload(decoded), payload) << "iter " << iter;
    EXPECT_EQ(FingerprintConstraints(*decoded.trace, decoded.len, decoded.negate_last),
              FingerprintConstraints(*pending.trace, pending.len, pending.negate_last))
        << "iter " << iter;
  }
}

TEST(DistWireTest, VerdictsRoundTrip) {
  WireVerdicts verdicts;
  verdicts.sat.push_back(SliceCache::SatEntry{0xdeadbeefull, {{0, 42}, {3, -1}}});
  verdicts.sat.push_back(SliceCache::SatEntry{0x1234ull, {}});
  verdicts.unsat.push_back(SliceCache::UnsatEntry{77, 78});

  WireWriter w;
  EncodeVerdicts(verdicts, &w);
  WireReader r(w.buf().data(), w.buf().size());
  WireVerdicts decoded;
  ASSERT_TRUE(DecodeVerdicts(&r, &decoded));
  ASSERT_EQ(decoded.sat.size(), 2u);
  EXPECT_EQ(decoded.sat[0].key, 0xdeadbeefull);
  EXPECT_EQ(decoded.sat[0].model,
            (SliceCache::SliceModel{{0, 42}, {3, -1}}));
  EXPECT_TRUE(decoded.sat[1].model.empty());
  ASSERT_EQ(decoded.unsat.size(), 1u);
  EXPECT_EQ(decoded.unsat[0].key, 77u);
  EXPECT_EQ(decoded.unsat[0].check, 78u);
}

TEST(DistWireTest, ShardResultRoundTrip) {
  WireShardResult shard;
  shard.result.reproduced = true;
  shard.result.budget_exhausted = false;
  shard.result.wall_seconds = 1.5;
  shard.result.witness_argv = {"prog", "k9", "7"};
  shard.result.witness_cells = {107, 57, 0};
  shard.result.crash.kind = CrashSite::Kind::kExplicit;
  shard.result.crash.func = 3;
  shard.result.crash.loc = SourceLoc{1, 12, 7};
  shard.result.crash.code = 13;
  shard.result.stats.runs = 99;
  shard.result.stats.slice_sat_hits = 1234;
  shard.result.stats.slice_evictions = 5;
  ReplayWorkerStats worker;
  worker.runs = 50;
  worker.dedup_skips = 4;
  worker.pendings_pruned = 6;
  worker.corpus_runs = 3;
  worker.promotions = 1;
  shard.result.stats.per_worker = {worker, worker};
  shard.result.stats.pendings_exported = 21;
  shard.result.stats.pendings_imported = 22;
  shard.result.stats.rebalance_rounds = 23;
  shard.result.stats.pendings_pruned = 31;
  shard.result.stats.corpus_runs = 17;
  shard.result.stats.promotions = 2;
  shard.result.stats.discipline_runs = {11, 12, 13, 14, 15};
  shard.result.stats.discipline_on_log = {1, 2, 3, 4, 5};
  shard.verdicts_published = 7;
  shard.verdicts_imported = 11;
  shard.pendings_seeded = 3;

  WireWriter w;
  EncodeShardResult(shard, &w);
  WireReader r(w.buf().data(), w.buf().size());
  WireShardResult decoded;
  ASSERT_TRUE(DecodeShardResult(&r, &decoded));
  EXPECT_TRUE(decoded.result.reproduced);
  EXPECT_EQ(decoded.result.witness_argv, shard.result.witness_argv);
  EXPECT_EQ(decoded.result.witness_cells, shard.result.witness_cells);
  EXPECT_TRUE(decoded.result.crash.SameSite(shard.result.crash));
  EXPECT_EQ(decoded.result.crash.code, 13);
  EXPECT_DOUBLE_EQ(decoded.result.wall_seconds, 1.5);
  EXPECT_EQ(decoded.result.stats.runs, 99u);
  EXPECT_EQ(decoded.result.stats.slice_sat_hits, 1234u);
  EXPECT_EQ(decoded.result.stats.slice_evictions, 5u);
  ASSERT_EQ(decoded.result.stats.per_worker.size(), 2u);
  EXPECT_EQ(decoded.result.stats.per_worker[1].runs, 50u);
  EXPECT_EQ(decoded.result.stats.per_worker[1].dedup_skips, 4u);
  EXPECT_EQ(decoded.result.stats.per_worker[1].pendings_pruned, 6u);
  EXPECT_EQ(decoded.result.stats.per_worker[1].corpus_runs, 3u);
  EXPECT_EQ(decoded.result.stats.per_worker[1].promotions, 1u);
  EXPECT_EQ(decoded.result.stats.pendings_exported, 21u);
  EXPECT_EQ(decoded.result.stats.pendings_imported, 22u);
  EXPECT_EQ(decoded.result.stats.rebalance_rounds, 23u);
  EXPECT_EQ(decoded.result.stats.pendings_pruned, 31u);
  EXPECT_EQ(decoded.result.stats.corpus_runs, 17u);
  EXPECT_EQ(decoded.result.stats.promotions, 2u);
  EXPECT_EQ(decoded.result.stats.discipline_runs, shard.result.stats.discipline_runs);
  EXPECT_EQ(decoded.result.stats.discipline_on_log, shard.result.stats.discipline_on_log);
  EXPECT_EQ(decoded.verdicts_published, 7u);
  EXPECT_EQ(decoded.verdicts_imported, 11u);
  EXPECT_EQ(decoded.pendings_seeded, 3u);
}

// ----- Framing -----

std::vector<u8> OneFrame(WireMsg type, const std::vector<u8>& payload) {
  std::vector<u8> bytes;
  AppendFrame(type, payload, &bytes);
  return bytes;
}

TEST(DistWireTest, FrameParserYieldsCompleteFrames) {
  const std::vector<u8> payload{1, 2, 3, 4, 5};
  std::vector<u8> stream = OneFrame(WireMsg::kVerdicts, payload);
  AppendFrame(WireMsg::kStop, {}, &stream);

  FrameParser parser;
  parser.Append(stream.data(), stream.size());
  WireFrame frame;
  ASSERT_EQ(parser.Next(&frame), FrameStatus::kFrame);
  EXPECT_EQ(frame.type, WireMsg::kVerdicts);
  EXPECT_EQ(frame.payload, payload);
  ASSERT_EQ(parser.Next(&frame), FrameStatus::kFrame);
  EXPECT_EQ(frame.type, WireMsg::kStop);
  EXPECT_TRUE(frame.payload.empty());
  EXPECT_EQ(parser.Next(&frame), FrameStatus::kNeedMore);
}

// Every strict prefix of a frame is "need more", never corrupt and never
// a frame: a shard reading a slow socket must simply wait.
TEST(DistWireTest, TruncatedFramesAreNeverAccepted) {
  const std::vector<u8> stream = OneFrame(WireMsg::kPending, {9, 8, 7, 6, 5, 4, 3, 2, 1});
  for (size_t cut = 0; cut < stream.size(); ++cut) {
    FrameParser parser;
    parser.Append(stream.data(), cut);
    WireFrame frame;
    EXPECT_EQ(parser.Next(&frame), FrameStatus::kNeedMore) << "cut " << cut;
  }
}

TEST(DistWireTest, CorruptPayloadIsRejectedByDigest) {
  const std::vector<u8> payload{10, 20, 30, 40};
  std::vector<u8> stream = OneFrame(WireMsg::kVerdicts, payload);
  stream.back() ^= 0x01;  // Flip one payload bit.

  FrameParser parser;
  parser.Append(stream.data(), stream.size());
  WireFrame frame;
  EXPECT_EQ(parser.Next(&frame), FrameStatus::kCorrupt);
  // Sticky: the stream is not trusted to resynchronize.
  EXPECT_EQ(parser.Next(&frame), FrameStatus::kCorrupt);
}

TEST(DistWireTest, BadMagicIsRejected) {
  std::vector<u8> stream = OneFrame(WireMsg::kStop, {});
  stream[0] ^= 0xff;
  FrameParser parser;
  parser.Append(stream.data(), stream.size());
  WireFrame frame;
  EXPECT_EQ(parser.Next(&frame), FrameStatus::kCorrupt);
}

TEST(DistWireTest, VersionMismatchIsRefused) {
  std::vector<u8> stream = OneFrame(WireMsg::kHello, {1, 2, 3});
  // Bytes 4..5 carry the version (little-endian, after the u32 magic).
  stream[4] = static_cast<u8>((kWireVersion + 1) & 0xff);
  stream[5] = static_cast<u8>(((kWireVersion + 1) >> 8) & 0xff);
  FrameParser parser;
  parser.Append(stream.data(), stream.size());
  WireFrame frame;
  EXPECT_EQ(parser.Next(&frame), FrameStatus::kVersionMismatch);
  EXPECT_EQ(parser.Next(&frame), FrameStatus::kVersionMismatch);
}

// Corrupt *payloads* that pass framing (e.g. a buggy peer rather than a
// damaged stream) must still be rejected by the bounds-checked decoders.
TEST(DistWireTest, DecoderRejectsNonTopologicalTrace) {
  WireWriter w;
  // One node whose child points at itself (must strictly precede).
  w.U32(1);                   // node count
  w.U8(static_cast<u8>(ExprOp::kNeg));
  w.I32(0);                   // a = 0, but this IS node 0 -> invalid.
  w.I32(-1);
  w.I64(0);
  w.U32(0);                   // constraints
  w.U64(0);                   // len
  w.U8(0);                    // negate_last
  w.U32(0);                   // seed
  w.U32(0);                   // domains
  w.U64(0);                   // priority
  WireReader r(w.buf().data(), w.buf().size());
  PortablePending decoded;
  EXPECT_FALSE(DecodePending(&r, &decoded));
}

// A digest-valid frame with a forged variable id must not reach the
// solver: model vectors size to max_var + 1, so a 2^30 id would be a
// multi-GB allocation in the consuming shard.
TEST(DistWireTest, DecoderRejectsVariableIdsBeyondSnapshots) {
  WireWriter w;
  w.U32(1);  // One node: kVar with an id far past the seed/domain sizes.
  w.U8(static_cast<u8>(ExprOp::kVar));
  w.I32(-1);
  w.I32(-1);
  w.I64(1 << 30);
  w.U32(1);  // One constraint over it.
  w.I32(0);
  w.U8(1);
  w.U64(1);  // len
  w.U8(0);   // negate_last
  w.U32(2);  // seed: two cells.
  w.I64(0);
  w.I64(0);
  w.U32(2);  // domains: two cells.
  w.I64(0);
  w.I64(255);
  w.I64(0);
  w.I64(255);
  w.U64(0);  // priority
  WireReader r(w.buf().data(), w.buf().size());
  PortablePending decoded;
  EXPECT_FALSE(DecodePending(&r, &decoded));
}

TEST(DistWireTest, DecoderRejectsAbsurdCounts) {
  WireWriter w;
  w.U32(0x7fffffff);  // Claims ~2B nodes in a 4-byte payload.
  WireReader r(w.buf().data(), w.buf().size());
  PortablePending decoded;
  EXPECT_FALSE(DecodePending(&r, &decoded));

  WireWriter w2;
  w2.U32(0x7fffffff);
  WireReader r2(w2.buf().data(), w2.buf().size());
  WireVerdicts verdicts;
  EXPECT_FALSE(DecodeVerdicts(&r2, &verdicts));
}

TEST(DistWireTest, DecoderRejectsTruncatedPayload) {
  ExprArena arena;
  const std::vector<u8> payload = EncodePendingPayload(MakePending(&arena, 9));
  for (const size_t cut : {payload.size() - 1, payload.size() / 2, size_t{3}}) {
    WireReader r(payload.data(), cut);
    PortablePending decoded;
    EXPECT_FALSE(DecodePending(&r, &decoded)) << "cut " << cut;
  }
}

// ----- Re-balance messages (kWorkRequest / kPendingExport) -----

TEST(DistWireTest, WorkRequestRoundTripsByteExactly) {
  const WireWorkRequest original{3, 16, 421, 99};
  WireWriter w;
  EncodeWorkRequest(original, &w);
  const std::vector<u8> payload = w.Take();

  WireReader r(payload.data(), payload.size());
  WireWorkRequest decoded;
  ASSERT_TRUE(DecodeWorkRequest(&r, &decoded));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(decoded.shard_id, 3u);
  EXPECT_EQ(decoded.want, 16u);
  EXPECT_EQ(decoded.frontier_size, 421u);
  EXPECT_EQ(decoded.seq, 99u);

  WireWriter w2;
  EncodeWorkRequest(decoded, &w2);
  EXPECT_EQ(w2.buf(), payload);
}

TEST(DistWireTest, WorkRequestRejectsHostileWantAndTruncation) {
  // A zero ask and an absurd ask are both refused — a donor must never
  // carve its whole frontier because of one forged frame.
  for (const u32 want : {0u, kMaxWorkRequestWant + 1, 0xffffffffu}) {
    WireWriter w;
    EncodeWorkRequest(WireWorkRequest{0, want, 0}, &w);
    WireReader r(w.buf().data(), w.buf().size());
    WireWorkRequest decoded;
    EXPECT_FALSE(DecodeWorkRequest(&r, &decoded)) << "want " << want;
  }
  WireWriter w;
  EncodeWorkRequest(WireWorkRequest{1, 8, 99}, &w);
  for (size_t cut = 0; cut < w.buf().size(); ++cut) {
    WireReader r(w.buf().data(), cut);
    WireWorkRequest decoded;
    EXPECT_FALSE(DecodeWorkRequest(&r, &decoded)) << "cut " << cut;
  }
}

TEST(DistWireTest, PendingExportRoundTripsByteExactlyAndRandomized) {
  Rng rng(777);
  for (int iter = 0; iter < 20; ++iter) {
    ExprArena arena;
    WirePendingExport batch;
    batch.requester_shard_id = static_cast<u32>(rng.Next() % 64);
    batch.seq = rng.Next();
    const size_t count = rng.Next() % 5;  // Empty batches are legal answers.
    for (size_t i = 0; i < count; ++i) {
      batch.pendings.push_back(MakePending(&arena, rng.Next() % 1000));
    }
    WireWriter w;
    EncodePendingExport(batch, &w);
    const std::vector<u8> payload = w.Take();

    WireReader r(payload.data(), payload.size());
    WirePendingExport decoded;
    ASSERT_TRUE(DecodePendingExport(&r, &decoded)) << "iter " << iter;
    EXPECT_EQ(r.remaining(), 0u) << "iter " << iter;
    EXPECT_EQ(decoded.requester_shard_id, batch.requester_shard_id) << "iter " << iter;
    EXPECT_EQ(decoded.seq, batch.seq) << "iter " << iter;
    ASSERT_EQ(decoded.pendings.size(), batch.pendings.size()) << "iter " << iter;
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(FingerprintConstraints(*decoded.pendings[i].trace, decoded.pendings[i].len,
                                       decoded.pendings[i].negate_last),
                FingerprintConstraints(*batch.pendings[i].trace, batch.pendings[i].len,
                                       batch.pendings[i].negate_last))
          << "iter " << iter << " pending " << i;
    }
    WireWriter w2;
    EncodePendingExport(decoded, &w2);
    EXPECT_EQ(w2.buf(), payload) << "iter " << iter;
  }
}

TEST(DistWireTest, PendingExportRejectsTruncationAndAbsurdCounts) {
  ExprArena arena;
  WirePendingExport batch;
  batch.pendings.push_back(MakePending(&arena, 5));
  batch.pendings.push_back(MakePending(&arena, 6));
  WireWriter w;
  EncodePendingExport(batch, &w);
  for (size_t cut = 0; cut < w.buf().size(); ++cut) {
    WireReader r(w.buf().data(), cut);
    WirePendingExport decoded;
    EXPECT_FALSE(DecodePendingExport(&r, &decoded)) << "cut " << cut;
  }

  WireWriter absurd;
  absurd.U32(0);           // requester
  absurd.U64(0);           // seq
  absurd.U32(0x7fffffff);  // Claims ~2B pendings in a 4-byte tail.
  WireReader r(absurd.buf().data(), absurd.buf().size());
  WirePendingExport decoded;
  EXPECT_FALSE(DecodePendingExport(&r, &decoded));

  // Over the per-frame export cap, even if the payload were big enough.
  WireWriter capped;
  capped.U32(0);
  capped.U64(0);
  capped.U32(kMaxWorkRequestWant + 1);
  for (u32 i = 0; i < (kMaxWorkRequestWant + 1) * 33; ++i) {
    capped.U8(0);
  }
  WireReader r2(capped.buf().data(), capped.buf().size());
  EXPECT_FALSE(DecodePendingExport(&r2, &decoded));
}

TEST(DistWireTest, ReBalanceFramesAreDigestChecked) {
  // Same framing rigor as every other message: one flipped payload bit
  // is rejected before any re-balance decoding runs.
  WireWriter w;
  EncodeWorkRequest(WireWorkRequest{2, 8, 17}, &w);
  std::vector<u8> stream = OneFrame(WireMsg::kWorkRequest, w.buf());
  stream.back() ^= 0x40;
  FrameParser parser;
  parser.Append(stream.data(), stream.size());
  WireFrame frame;
  EXPECT_EQ(parser.Next(&frame), FrameStatus::kCorrupt);
}

// ----- TCP handshake messages (kJoin / kJob) -----

TEST(DistWireTest, JoinRoundTripsAndRejectsHostileIdent) {
  WireJoin join;
  join.ident = "host-a/4242";
  join.num_workers = 8;
  WireWriter w;
  EncodeJoin(join, &w);
  WireReader r(w.buf().data(), w.buf().size());
  WireJoin decoded;
  ASSERT_TRUE(DecodeJoin(&r, &decoded));
  EXPECT_EQ(decoded.ident, join.ident);
  EXPECT_EQ(decoded.num_workers, 8u);

  WireJoin hostile;
  hostile.ident = std::string(100'000, 'x');
  WireWriter w2;
  EncodeJoin(hostile, &w2);
  WireReader r2(w2.buf().data(), w2.buf().size());
  EXPECT_FALSE(DecodeJoin(&r2, &decoded));
}

WireJob MakeJob() {
  WireJob job;
  job.config.max_runs = 777;
  job.config.wall_ms = 1234;
  job.config.total_steps = 999;
  job.config.max_steps_per_run = 88;
  job.config.solver.max_steps = 555;
  job.config.solver.max_enumeration = 66;
  job.config.seed = 0xabcdef;
  job.config.use_syscall_log = true;
  job.config.pick = ReplayConfig::Pick::kLogBits;
  job.config.num_workers = 3;
  job.config.solver_cache = false;
  job.config.slice_cache_capacity = 99;
  job.config.solve_batch = 5;
  job.config.gossip_interval_ms = 7;
  job.config.prune_subsumed = true;
  job.config.corpus_seeds = {{65, 66, 67, 13}, {}, {120}};
  job.config.program.app = "int main() { return 0; }";
  job.config.program.libs = {"int helper() { return 1; }"};
  job.plan.method = InstrumentMethod::kDynamic;
  job.plan.branches = DenseBitset(10);
  job.plan.branches.Set(1);
  job.plan.branches.Set(3);
  job.plan.branches.Set(9);
  job.report.method = InstrumentMethod::kDynamic;
  for (int i = 0; i < 13; ++i) {
    job.report.branch_log.PushBit((i % 3) == 0);
  }
  job.report.has_syscall_log = true;
  job.report.syscall_log = {{Builtin::kRead, 13}, {Builtin::kPollSignal, 1}};
  job.report.crash.kind = CrashSite::Kind::kExplicit;
  job.report.crash.func = 2;
  job.report.crash.loc = SourceLoc{0, 5, 3};
  job.report.crash.code = 7;
  job.report.shape.argv = {"prog", "k9", "7"};
  job.report.shape.argv_public = {false, true};
  StreamShape stream;
  stream.name = "stdin";
  stream.length = 13;
  stream.chunk = -1;
  job.report.shape.world.streams.push_back(stream);
  job.report.shape.world.files.emplace_back("/tmp/x", 0);
  job.report.shape.world.stdin_stream = 0;
  job.report.shape.world.connection_streams = {0};
  job.report.shape.world.max_concurrent_conns = 2;
  job.report.shape.world.listen_fd = -1;
  return job;
}

std::vector<u8> EncodeJobPayload(const WireJob& job) {
  WireWriter w;
  EncodeJob(job, &w);
  return w.Take();
}

TEST(DistWireTest, JobRoundTripsByteExactly) {
  const WireJob job = MakeJob();
  const std::vector<u8> payload = EncodeJobPayload(job);

  WireReader r(payload.data(), payload.size());
  WireJob decoded;
  ASSERT_TRUE(DecodeJob(&r, &decoded));
  EXPECT_EQ(r.remaining(), 0u);

  EXPECT_EQ(decoded.config.max_runs, 777u);
  EXPECT_EQ(decoded.config.wall_ms, 1234);
  EXPECT_EQ(decoded.config.total_steps, 999u);
  EXPECT_EQ(decoded.config.max_steps_per_run, 88u);
  EXPECT_EQ(decoded.config.solver.max_steps, 555u);
  EXPECT_EQ(decoded.config.solver.max_enumeration, 66u);
  EXPECT_EQ(decoded.config.seed, 0xabcdefu);
  EXPECT_TRUE(decoded.config.use_syscall_log);
  EXPECT_EQ(decoded.config.pick, ReplayConfig::Pick::kLogBits);
  EXPECT_EQ(decoded.config.num_workers, 3u);
  EXPECT_FALSE(decoded.config.solver_cache);
  EXPECT_EQ(decoded.config.slice_cache_capacity, 99u);
  EXPECT_EQ(decoded.config.solve_batch, 5u);
  EXPECT_EQ(decoded.config.gossip_interval_ms, 7);
  EXPECT_TRUE(decoded.config.prune_subsumed);
  EXPECT_EQ(decoded.config.corpus_seeds, job.config.corpus_seeds);
  // A shipped job never nests transports or shard counts.
  EXPECT_EQ(decoded.config.num_shards, 1u);
  EXPECT_EQ(decoded.config.transport, ReplayTransport::kFork);
  EXPECT_EQ(decoded.config.program.app, job.config.program.app);
  ASSERT_EQ(decoded.config.program.libs.size(), 1u);
  EXPECT_EQ(decoded.config.program.libs[0], job.config.program.libs[0]);

  EXPECT_EQ(decoded.plan.method, InstrumentMethod::kDynamic);
  EXPECT_EQ(decoded.plan.branches, job.plan.branches);

  EXPECT_EQ(decoded.report.method, InstrumentMethod::kDynamic);
  EXPECT_EQ(decoded.report.branch_log, job.report.branch_log);
  ASSERT_TRUE(decoded.report.has_syscall_log);
  ASSERT_EQ(decoded.report.syscall_log.size(), 2u);
  EXPECT_EQ(decoded.report.syscall_log[0].kind, Builtin::kRead);
  EXPECT_EQ(decoded.report.syscall_log[0].value, 13);
  EXPECT_TRUE(decoded.report.crash.SameSite(job.report.crash));
  EXPECT_EQ(decoded.report.shape.argv, job.report.shape.argv);
  EXPECT_EQ(decoded.report.shape.argv_public, job.report.shape.argv_public);
  ASSERT_EQ(decoded.report.shape.world.streams.size(), 1u);
  EXPECT_EQ(decoded.report.shape.world.streams[0].name, "stdin");
  EXPECT_EQ(decoded.report.shape.world.streams[0].length, 13);
  EXPECT_EQ(decoded.report.shape.world.files, job.report.shape.world.files);
  EXPECT_EQ(decoded.report.shape.world.stdin_stream, 0);
  EXPECT_EQ(decoded.report.shape.world.connection_streams,
            job.report.shape.world.connection_streams);
  EXPECT_EQ(decoded.report.shape.world.max_concurrent_conns, 2);
  EXPECT_EQ(decoded.report.shape.world.listen_fd, -1);

  EXPECT_EQ(EncodeJobPayload(decoded), payload);
}

TEST(DistWireTest, JobDecodeRejectsTruncationEverywhere) {
  // Every strict prefix must fail cleanly — a listening retrace_shardd
  // feeds this decoder bytes from the network.
  const std::vector<u8> payload = EncodeJobPayload(MakeJob());
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    WireReader r(payload.data(), cut);
    WireJob decoded;
    EXPECT_FALSE(DecodeJob(&r, &decoded)) << "cut " << cut;
  }
}

TEST(DistWireTest, JobDecodeRejectsHostilePayloads) {
  // Forged enum values.
  {
    WireJob job = MakeJob();
    job.config.pick = static_cast<ReplayConfig::Pick>(9);
    const std::vector<u8> payload = EncodeJobPayload(job);
    WireReader r(payload.data(), payload.size());
    WireJob decoded;
    EXPECT_FALSE(DecodeJob(&r, &decoded));
  }
  {
    WireJob job = MakeJob();
    job.plan.method = static_cast<InstrumentMethod>(11);
    const std::vector<u8> payload = EncodeJobPayload(job);
    WireReader r(payload.data(), payload.size());
    WireJob decoded;
    EXPECT_FALSE(DecodeJob(&r, &decoded));
  }
  {
    WireJob job = MakeJob();
    job.report.syscall_log[0].kind = static_cast<Builtin>(200);
    const std::vector<u8> payload = EncodeJobPayload(job);
    WireReader r(payload.data(), payload.size());
    WireJob decoded;
    EXPECT_FALSE(DecodeJob(&r, &decoded));
  }
  // A forged stream length would size the consuming shard's input-cell
  // layout: refuse memory bombs.
  {
    WireJob job = MakeJob();
    job.report.shape.world.streams[0].length = i64{1} << 40;
    const std::vector<u8> payload = EncodeJobPayload(job);
    WireReader r(payload.data(), payload.size());
    WireJob decoded;
    EXPECT_FALSE(DecodeJob(&r, &decoded));
  }
  // A file table naming a stream that does not exist.
  {
    WireJob job = MakeJob();
    job.report.shape.world.files[0].second = 7;
    const std::vector<u8> payload = EncodeJobPayload(job);
    WireReader r(payload.data(), payload.size());
    WireJob decoded;
    EXPECT_FALSE(DecodeJob(&r, &decoded));
  }
  // More corpus seeds than any real job ships (forged count): refused
  // before any allocation.
  {
    WireJob job = MakeJob();
    job.config.corpus_seeds.assign(2000, std::vector<i64>{});
    const std::vector<u8> payload = EncodeJobPayload(job);
    WireReader r(payload.data(), payload.size());
    WireJob decoded;
    EXPECT_FALSE(DecodeJob(&r, &decoded));
  }
  // A single absurd corpus model (memory bomb): refused by the per-seed
  // cell cap even when the seed count is plausible.
  {
    WireJob job = MakeJob();
    job.config.corpus_seeds = {std::vector<i64>(1, 7)};
    std::vector<u8> payload = EncodeJobPayload(job);
    // Find the encoded cell count (u32 value 1 followed by the lone i64
    // cell value 7, little-endian) and inflate it past the cap.
    const u8 needle[] = {1, 0, 0, 0, 7, 0, 0, 0, 0, 0, 0, 0};
    bool patched = false;
    for (size_t i = 0; i + sizeof(needle) <= payload.size(); ++i) {
      if (std::equal(needle, needle + sizeof(needle), payload.begin() + i)) {
        payload[i + 3] = 0x7f;  // count = 0x7f000001 > 1 << 20.
        patched = true;
        break;
      }
    }
    ASSERT_TRUE(patched);
    WireReader r(payload.data(), payload.size());
    WireJob decoded;
    EXPECT_FALSE(DecodeJob(&r, &decoded));
  }
}

}  // namespace
}  // namespace retrace
