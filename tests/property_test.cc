// Property-based tests: parameterized sweeps over randomized instances.
#include <gtest/gtest.h>

#include "src/core/pipeline.h"
#include "src/instrument/recorder.h"
#include "src/support/rng.h"
#include "src/workloads/workloads.h"

namespace retrace {
namespace {

// ----- BitVec round-trips over random lengths and contents -----

class BitVecProperty : public ::testing::TestWithParam<int> {};

TEST_P(BitVecProperty, SerializeRoundTrip) {
  Rng rng(GetParam());
  const size_t bits = 1 + rng.NextBelow(10'000);
  BitVec original;
  for (size_t i = 0; i < bits; ++i) {
    original.PushBit(rng.NextBelow(2) == 1);
  }
  const BitVec copy = BitVec::Deserialize(original.Serialize(), original.size());
  ASSERT_EQ(copy.size(), original.size());
  for (size_t i = 0; i < bits; ++i) {
    ASSERT_EQ(copy.GetBit(i), original.GetBit(i)) << "bit " << i;
  }
}

TEST_P(BitVecProperty, RecorderMatchesDirectPush) {
  // The 4KB-paged recorder must produce exactly the bits pushed.
  Rng rng(GetParam() * 7919 + 13);
  const size_t bits = 1 + rng.NextBelow(100'000);
  InstrumentationPlan plan;
  plan.branches = DenseBitset(1);
  plan.branches.Set(0);
  BranchTraceRecorder recorder(plan);
  BitVec expected;
  for (size_t i = 0; i < bits; ++i) {
    const bool bit = rng.NextBelow(3) == 0;
    recorder.RecordBit(bit);
    expected.PushBit(bit);
  }
  const BitVec log = recorder.TakeLog();
  EXPECT_EQ(log, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitVecProperty, ::testing::Range(1, 9));

// ----- Expression simplification preserves semantics -----

class ExprProperty : public ::testing::TestWithParam<int> {};

TEST_P(ExprProperty, SimplificationSound) {
  Rng rng(GetParam());
  ExprArena arena;
  // Reference evaluator mirroring construction without simplification.
  struct Node {
    ExprOp op;
    int a = -1;
    int b = -1;
    i64 imm = 0;
  };
  std::vector<Node> reference;
  std::vector<ExprRef> built;
  const ExprOp ops[] = {ExprOp::kAdd, ExprOp::kSub, ExprOp::kMul, ExprOp::kAnd,
                        ExprOp::kOr,  ExprOp::kXor, ExprOp::kEq,  ExprOp::kLt,
                        ExprOp::kLe,  ExprOp::kShl, ExprOp::kDiv, ExprOp::kRem};
  // Leaves: 4 vars and 4 constants.
  for (int v = 0; v < 4; ++v) {
    reference.push_back(Node{ExprOp::kVar, -1, -1, v});
    built.push_back(arena.MkVar(v));
  }
  for (int c = 0; c < 4; ++c) {
    const i64 value = static_cast<i64>(rng.NextInRange(-3, 3));
    reference.push_back(Node{ExprOp::kConst, -1, -1, value});
    built.push_back(arena.MkConst(value));
  }
  for (int i = 0; i < 60; ++i) {
    const ExprOp op = ops[rng.NextBelow(std::size(ops))];
    const int a = static_cast<int>(rng.NextBelow(built.size()));
    const int b = static_cast<int>(rng.NextBelow(built.size()));
    reference.push_back(Node{op, a, b, 0});
    built.push_back(arena.MkBin(op, built[a], built[b]));
  }
  // Evaluate both on random assignments.
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<i64> assignment;
    for (int v = 0; v < 4; ++v) {
      assignment.push_back(rng.NextInRange(-100, 100));
    }
    std::vector<i64> ref_values(reference.size());
    for (size_t n = 0; n < reference.size(); ++n) {
      const Node& node = reference[n];
      if (node.op == ExprOp::kVar) {
        ref_values[n] = assignment[node.imm];
      } else if (node.op == ExprOp::kConst) {
        ref_values[n] = node.imm;
      } else {
        ref_values[n] = ExprArena::EvalBin(node.op, ref_values[node.a], ref_values[node.b]);
      }
      ASSERT_EQ(arena.Eval(built[n], assignment), ref_values[n])
          << "node " << n << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprProperty, ::testing::Range(100, 112));

// ----- Solver completeness on satisfiable byte systems -----

class SolverProperty : public ::testing::TestWithParam<int> {};

TEST_P(SolverProperty, FindsPlantedSolution) {
  Rng rng(GetParam());
  ExprArena arena;
  const int num_vars = 3 + static_cast<int>(rng.NextBelow(10));
  // Ground truth assignment.
  std::vector<i64> truth;
  std::vector<Interval> domains;
  for (int v = 0; v < num_vars; ++v) {
    truth.push_back(rng.NextBelow(256));
    domains.push_back(Interval{0, 255});
  }
  // Constraints satisfied by the ground truth: comparisons between
  // variables, constants and small arithmetic combinations.
  std::vector<Constraint> constraints;
  for (int c = 0; c < num_vars * 3; ++c) {
    const i32 x = static_cast<i32>(rng.NextBelow(num_vars));
    const i32 y = static_cast<i32>(rng.NextBelow(num_vars));
    ExprRef lhs = arena.MkVar(x);
    ExprRef rhs;
    switch (rng.NextBelow(4)) {
      case 0:
        rhs = arena.MkConst(truth[x]);  // Equality with the planted value.
        break;
      case 1:
        rhs = arena.MkVar(y);
        break;
      case 2:
        rhs = arena.MkBin(ExprOp::kAdd, arena.MkVar(y), arena.MkConst(rng.NextInRange(-5, 5)));
        break;
      default:
        lhs = arena.MkBin(ExprOp::kAdd, arena.MkVar(x), arena.MkVar(y));
        rhs = arena.MkConst(truth[x] + truth[y]);
        break;
    }
    const ExprOp cmp[] = {ExprOp::kEq, ExprOp::kNe, ExprOp::kLt, ExprOp::kLe,
                          ExprOp::kGt, ExprOp::kGe};
    const ExprOp op = cmp[rng.NextBelow(std::size(cmp))];
    const ExprRef expr = arena.MkBin(op, lhs, rhs);
    // Orient the constraint so the ground truth satisfies it.
    constraints.push_back(Constraint{expr, arena.Eval(expr, truth) != 0});
  }
  // Perturbed seed: start a few bytes away from the truth.
  std::vector<i64> seed = truth;
  for (int k = 0; k < 3; ++k) {
    seed[rng.NextBelow(num_vars)] = rng.NextBelow(256);
  }
  Solver solver(arena, SolverOptions{});
  const SolveResult result = solver.Solve(constraints, domains, seed);
  ASSERT_EQ(result.status, SolveStatus::kSat) << "seed " << GetParam();
  EXPECT_TRUE(solver.Satisfies(constraints, result.model));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverProperty, ::testing::Range(200, 224));

// ----- Interpreter determinism across repeated runs -----

class DeterminismProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(DeterminismProperty, RunsAreBitIdentical) {
  const WorkloadSources sources = GetWorkload(GetParam());
  auto pipeline = Pipeline::FromSources(sources.app, sources.libs).take();
  InstrumentationPlan all =
      pipeline->MakePlan(PlanInputs::AllBranches());
  InputSpec spec;
  if (std::string(GetParam()) == "listing1") {
    spec.argv = {"listing1", "b"};
  } else {
    spec.argv = {GetParam(), "-m", "0755", "x"};
  }
  spec.world.listen_fd = -1;
  const auto first = pipeline->RecordUserRun(spec, all, {}).take();
  const auto second = pipeline->RecordUserRun(spec, all, {}).take();
  EXPECT_EQ(first.result.status, second.result.status);
  EXPECT_EQ(first.result.exit_code, second.result.exit_code);
  EXPECT_EQ(first.result.stats.instrs, second.result.stats.instrs);
  EXPECT_EQ(first.report.branch_log, second.report.branch_log);
  EXPECT_EQ(first.stdout_text, second.stdout_text);
}

INSTANTIATE_TEST_SUITE_P(Workloads, DeterminismProperty,
                         ::testing::Values("listing1", "mkdir", "mkfifo"));

// ----- Replay soundness over a family of guarded crashes -----

struct GuardCase {
  int position;  // Which byte of argv[1] guards the crash.
  InstrumentMethod method;
};

class ReplayProperty : public ::testing::TestWithParam<GuardCase> {};

TEST_P(ReplayProperty, ReproducesGuardedCrash) {
  const GuardCase param = GetParam();
  // Crash iff argv[1][position] == 'K'.
  std::string source = R"(
int main(int argc, char **argv) {
  if (argc < 2) { return 1; }
  int i = 0;
  while (argv[1][i] != 0) { i = i + 1; }
  if (i > )" + std::to_string(param.position) +
                       R"() {
    if (argv[1][)" + std::to_string(param.position) +
                       R"(] == 'K') {
      crash(9);
    }
  }
  return 0;
}
)";
  auto built = Pipeline::FromSources(source, {});
  ASSERT_TRUE(built.ok());
  auto pipeline = built.take();

  const AnalysisResult* dyn_ptr = nullptr;
  const StaticAnalysisResult* stat_ptr = nullptr;
  AnalysisResult dyn;
  StaticAnalysisResult stat;
  if (param.method != InstrumentMethod::kAllBranches) {
    InputSpec benign;
    benign.argv = {"prog", "abcdefgh"};
    benign.world.listen_fd = -1;
    AnalysisConfig config;
    config.max_runs = 24;
    dyn = pipeline->RunDynamicAnalysis(benign, config);
    stat = pipeline->RunStaticAnalysis({});
    dyn_ptr = &dyn;
    stat_ptr = &stat;
  }
  const InstrumentationPlan plan = pipeline->MakePlan(PlanInputs::ForMethod(param.method, dyn_ptr, stat_ptr));

  InputSpec bug;
  bug.argv = {"prog", "zzzzKzzz"};
  bug.argv[1][param.position] = 'K';
  bug.world.listen_fd = -1;
  const auto user = pipeline->RecordUserRun(bug, plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig config;
  config.max_runs = 4000;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
  ASSERT_TRUE(replay.reproduced)
      << "position " << param.position << " method " << InstrumentMethodName(param.method);
  EXPECT_EQ(replay.witness_argv[1][param.position], 'K');
  EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));
}

std::vector<GuardCase> GuardCases() {
  std::vector<GuardCase> cases;
  for (int position : {0, 3, 7}) {
    for (InstrumentMethod method :
         {InstrumentMethod::kDynamic, InstrumentMethod::kStatic,
          InstrumentMethod::kDynamicStatic, InstrumentMethod::kAllBranches}) {
      cases.push_back(GuardCase{position, method});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Guards, ReplayProperty, ::testing::ValuesIn(GuardCases()));

// ----- Static analysis soundness across all workloads -----

class SoundnessProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(SoundnessProperty, DynamicSymbolicImpliesStaticSymbolic) {
  const WorkloadSources sources = GetWorkload(GetParam());
  auto pipeline = Pipeline::FromSources(sources.app, sources.libs).take();
  const StaticAnalysisResult stat = pipeline->RunStaticAnalysis({});

  InputSpec spec;
  const std::string name = GetParam();
  if (name == "listing1" || name == "loop_micro") {
    spec.argv = {name, "a12"};
    spec.world.listen_fd = -1;
  } else {
    spec.argv = {name, "-m", "0644", "opq", "rst"};
    spec.world.listen_fd = -1;
  }
  AnalysisConfig config;
  config.max_runs = 24;
  const AnalysisResult dyn = pipeline->RunDynamicAnalysis(spec, config);
  for (const BranchInfo& branch : pipeline->module().branches) {
    if (dyn.labels[branch.id] == BranchLabel::kSymbolic) {
      EXPECT_TRUE(stat.symbolic_branches.Test(branch.id))
          << name << " branch " << branch.id << " line " << branch.loc.line;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, SoundnessProperty,
                         ::testing::Values("listing1", "loop_micro", "mkdir", "mknod",
                                           "mkfifo", "paste"));

}  // namespace
}  // namespace retrace
