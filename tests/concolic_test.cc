#include <gtest/gtest.h>

#include "src/concolic/engine.h"
#include "src/workloads/scenarios.h"
#include "src/workloads/workloads.h"
#include "tests/testutil.h"

namespace retrace {
namespace {

// Branch ids whose label matches, mapped to source lines for assertions.
std::vector<int> LinesWithLabel(const IrModule& module, const AnalysisResult& result,
                                BranchLabel label) {
  std::vector<int> lines;
  for (const BranchInfo& branch : module.branches) {
    if (result.labels[branch.id] == label) {
      lines.push_back(branch.loc.line);
    }
  }
  return lines;
}

TEST(ConcolicTest, ListingOneLabels) {
  const WorkloadSources sources = Listing1Workload();
  Compiled c = CompileOrDie(sources.app, sources.libs);
  ExprArena arena;
  ConcolicEngine engine(*c.module, &arena);
  AnalysisConfig config;
  config.max_runs = 32;
  const AnalysisResult result = engine.Analyze(Listing1Spec('a'), config);

  // The two option comparisons are symbolic; the fibonacci recursion branch
  // is concrete; at least one path was explored for each option.
  size_t symbolic_app = 0;
  size_t concrete_app = 0;
  for (const BranchInfo& branch : c.module->branches) {
    if (branch.is_library) {
      continue;
    }
    if (result.labels[branch.id] == BranchLabel::kSymbolic) {
      ++symbolic_app;
    }
    if (result.labels[branch.id] == BranchLabel::kConcrete) {
      ++concrete_app;
    }
  }
  // App branches: argc > 1, option == 'a', option == 'b', fib's n < 2.
  EXPECT_EQ(symbolic_app, 2u);  // The two option tests ('argc > 1' is shape-concrete).
  EXPECT_GE(concrete_app, 2u);  // fib condition + argc test.
  EXPECT_GT(result.runs, 2u);
}

TEST(ConcolicTest, ExplorationDiscoversBothOptions) {
  // Exploration must reach fibonacci through both 'a' and 'b' (different
  // fib arguments -> both option branches flip during search).
  const WorkloadSources sources = Listing1Workload();
  Compiled c = CompileOrDie(sources.app, sources.libs);
  ExprArena arena;
  ConcolicEngine engine(*c.module, &arena);
  AnalysisConfig config;
  config.max_runs = 32;
  config.start_from_defaults = false;  // Random initial input.
  config.seed = 3;
  const AnalysisResult result = engine.Analyze(Listing1Spec('x'), config);
  // The option=='b' branch can only be *executed* if option!='a'; seeing it
  // labeled symbolic proves the else path ran; full exploration proves both.
  EXPECT_EQ(result.CountLabel(BranchLabel::kSymbolic) >= 2, true);
}

TEST(ConcolicTest, BudgetLimitsCoverage) {
  const WorkloadSources sources = UserverWorkload();
  Compiled c = CompileOrDie(sources.app, sources.libs);
  ExprArena arena;
  ConcolicEngine engine(*c.module, &arena);

  AnalysisConfig low;
  low.max_runs = 2;
  const AnalysisResult lc = engine.Analyze(UserverExploreSpec(), low);

  AnalysisConfig high;
  high.max_runs = 40;
  const AnalysisResult hc = engine.Analyze(UserverExploreSpec(), high);

  EXPECT_LE(lc.Coverage(), hc.Coverage());
  EXPECT_GE(hc.CountLabel(BranchLabel::kSymbolic), lc.CountLabel(BranchLabel::kSymbolic));
  EXPECT_GT(hc.Coverage(), 0.0);
  EXPECT_LT(hc.Coverage(), 1.0);  // The server is too big to cover fully.
}

TEST(ConcolicTest, ConcreteUpgradableToSymbolic) {
  // g starts concrete; after the first branch the loop bound becomes
  // input-dependent on some paths, so the loop branch must end symbolic.
  Compiled c = CompileOrDie(R"(
    int main(int argc, char **argv) {
      int n = 3;
      if (argv[1][0] == 'y') { n = argv[1][1]; }
      int s = 0;
      for (int i = 0; i < n; i = i + 1) { s = s + 1; }
      return s;
    }
  )");
  ExprArena arena;
  ConcolicEngine engine(*c.module, &arena);
  InputSpec spec;
  spec.argv = {"prog", "nn"};
  spec.world.listen_fd = -1;
  AnalysisConfig config;
  config.max_runs = 16;
  const AnalysisResult result = engine.Analyze(spec, config);
  // Loop-condition branch: concrete on the first run (n == 3), symbolic
  // once exploration flips argv[1][0] to 'y'.
  const std::vector<int> symbolic = LinesWithLabel(*c.module, result, BranchLabel::kSymbolic);
  EXPECT_GE(symbolic.size(), 2u);
}

TEST(ConcolicTest, ProfileRunCountsExecutions) {
  const WorkloadSources sources = Listing1Workload();
  Compiled c = CompileOrDie(sources.app, sources.libs);
  ExprArena arena;
  ConcolicEngine engine(*c.module, &arena);
  const AnalysisResult result = engine.ProfileRun(Listing1Spec('a'), nullptr);
  ASSERT_EQ(result.runs, 1u);
  u64 total_execs = 0;
  u64 symbolic_execs = 0;
  for (const BranchStats& stats : result.stats) {
    total_execs += stats.execs;
    symbolic_execs += stats.symbolic_execs;
  }
  // fib(18) executes thousands of concrete branches; with option 'a' only
  // the first option test executes (symbolically) — the else-if is skipped.
  EXPECT_GT(total_execs, 1000u);
  EXPECT_EQ(symbolic_execs, 1u);

  // With an unmatched option both tests execute symbolically.
  const AnalysisResult other = engine.ProfileRun(Listing1Spec('q'), nullptr);
  u64 other_symbolic = 0;
  for (const BranchStats& stats : other.stats) {
    other_symbolic += stats.symbolic_execs;
  }
  EXPECT_EQ(other_symbolic, 2u);
}

TEST(ConcolicTest, SymbolicExecutionsNeverExceedTotal) {
  const WorkloadSources sources = MkdirWorkload();
  Compiled c = CompileOrDie(sources.app, sources.libs);
  ExprArena arena;
  ConcolicEngine engine(*c.module, &arena);
  const Scenario scenario = CoreutilsBenignScenario("mkdir");
  const AnalysisResult result = engine.ProfileRun(scenario.spec, scenario.policy.get());
  for (const BranchStats& stats : result.stats) {
    EXPECT_LE(stats.symbolic_execs, stats.execs);
  }
}

}  // namespace
}  // namespace retrace
