// End-to-end tests for the distributed (multi-process) replay scheduler:
// 2-shard reproduction of the miniature crash scenarios, in-process
// parity for num_shards <= 1, and shard-aware stats aggregation.
#include <gtest/gtest.h>

#include <numeric>

#include "src/core/pipeline.h"
#include "tests/testutil.h"

namespace retrace {
namespace {

// Crashes iff argv[1] starts with "k9" and argv[2][0] > '5' (the
// miniature scenario of replay_parallel_test.cc).
constexpr const char* kGuardedCrash = R"(
int main(int argc, char **argv) {
  if (argc < 3) { return 1; }
  if (argv[1][0] == 'k') {
    if (argv[1][1] == '9') {
      if (argv[2][0] > '5') {
        crash(13);
      }
    }
  }
  return 0;
}
)";

// Wider search space: enough frontier for the scout to actually ship
// pending sets to both shards.
constexpr const char* kDeepGuardedCrash = R"(
int main(int argc, char **argv) {
  if (argc < 3) { return 1; }
  int hits = 0;
  if (argv[1][0] == 'a') { hits = hits + 1; }
  if (argv[1][1] == 'b') { hits = hits + 1; }
  if (argv[1][2] == 'c') { hits = hits + 1; }
  if (argv[2][0] > 'm') { hits = hits + 1; }
  if (hits == 4) { crash(7); }
  return 0;
}
)";

std::unique_ptr<Pipeline> MustBuild(std::string_view app) {
  auto r = Pipeline::FromSources(app, {});
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().ToString());
  return r.take();
}

InputSpec GuardedCrashInput() {
  InputSpec spec;
  spec.argv = {"prog", "k9", "7"};
  spec.world.listen_fd = -1;
  return spec;
}

InputSpec DeepGuardedCrashInput() {
  InputSpec spec;
  spec.argv = {"prog", "abc", "z"};
  spec.world.listen_fd = -1;
  return spec;
}

TEST(DistReplayTest, TwoShardsReproduceGuardedCrash) {
  auto pipeline = MustBuild(kGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(InstrumentMethod::kAllBranches, nullptr, nullptr);
  const auto user = pipeline->RecordUserRun(GuardedCrashInput(), plan, {});
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig config;
  config.num_shards = 2;
  config.num_workers = 2;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config);
  ASSERT_TRUE(replay.reproduced);
  ASSERT_GE(replay.witness_argv.size(), 3u);
  EXPECT_EQ(replay.witness_argv[1][0], 'k');
  EXPECT_EQ(replay.witness_argv[1][1], '9');
  EXPECT_GT(replay.witness_argv[2][0], '5');
  EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));
}

TEST(DistReplayTest, TwoShardsReproduceDeepCrashAndAggregateStats) {
  auto pipeline = MustBuild(kDeepGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(InstrumentMethod::kAllBranches, nullptr, nullptr);
  const auto user = pipeline->RecordUserRun(DeepGuardedCrashInput(), plan, {});
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig config;
  config.num_shards = 2;
  config.num_workers = 2;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config);
  ASSERT_TRUE(replay.reproduced);
  EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));

  // Shard-aware aggregation: one per_shard entry per process; aggregate
  // runs = scout runs + every shard worker's runs.
  const ReplayStats& s = replay.stats;
  ASSERT_EQ(s.per_shard.size(), 2u);
  EXPECT_EQ(s.per_shard[0].shard_id, 0u);
  EXPECT_EQ(s.per_shard[1].shard_id, 1u);
  const u64 worker_runs = std::accumulate(
      s.per_worker.begin(), s.per_worker.end(), u64{0},
      [](u64 acc, const ReplayWorkerStats& w) { return acc + w.runs; });
  EXPECT_EQ(s.runs, s.harvest_runs + worker_runs);
  const u64 shard_runs =
      std::accumulate(s.per_shard.begin(), s.per_shard.end(), u64{0},
                      [](u64 acc, const ReplayShardStats& sh) { return acc + sh.runs; });
  EXPECT_EQ(worker_runs, shard_runs);
  // The wire was actually used: handshake + results at minimum.
  EXPECT_GT(s.wire_bytes_tx, 0u);
  EXPECT_GT(s.wire_bytes_rx, 0u);
  // Reproduced and the scout did not finish => some shard did. (Several
  // shards may genuinely reproduce before the stop lands; each reports
  // its own truth.)
  int winners = 0;
  for (const ReplayShardStats& sh : s.per_shard) {
    winners += sh.reproduced ? 1 : 0;
  }
  EXPECT_GE(winners, 1);
}

TEST(DistReplayTest, ScoutShortCircuitsWithoutForking) {
  // With a wide-open run budget and the trivial scenario, the scout's
  // bounded sequential search reproduces the crash before any shard is
  // forked: no wire traffic, no per-shard entries.
  auto pipeline = MustBuild(kGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(InstrumentMethod::kAllBranches, nullptr, nullptr);
  const auto user = pipeline->RecordUserRun(GuardedCrashInput(), plan, {});
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig config;
  config.num_shards = 4;  // Scout cap = max(4, 2*shards) = 8 runs.
  config.seed = 11;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config);
  if (replay.stats.per_shard.empty()) {
    // Scout finished the job: the distributed layer added zero overhead.
    EXPECT_EQ(replay.stats.wire_bytes_tx, 0u);
    EXPECT_EQ(replay.stats.wire_bytes_rx, 0u);
    EXPECT_EQ(replay.stats.runs, replay.stats.harvest_runs);
  }
  ASSERT_TRUE(replay.reproduced);
  EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));
}

TEST(DistReplayTest, SingleShardConfigStaysInProcess) {
  auto pipeline = MustBuild(kGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(InstrumentMethod::kAllBranches, nullptr, nullptr);
  const auto user = pipeline->RecordUserRun(GuardedCrashInput(), plan, {});
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig base;
  base.seed = 11;
  const ReplayResult a = pipeline->Reproduce(user.report, plan, base);

  ReplayConfig explicit_one = base;
  explicit_one.num_shards = 1;
  const ReplayResult b = pipeline->Reproduce(user.report, plan, explicit_one);

  // num_shards == 1 must be byte-for-byte the in-process engine: same
  // witness, same counters, no distributed bookkeeping.
  ASSERT_TRUE(a.reproduced);
  ASSERT_TRUE(b.reproduced);
  EXPECT_EQ(a.witness_cells, b.witness_cells);
  EXPECT_EQ(a.witness_argv, b.witness_argv);
  EXPECT_EQ(a.stats.runs, b.stats.runs);
  EXPECT_EQ(a.stats.solver_calls, b.stats.solver_calls);
  EXPECT_TRUE(b.stats.per_shard.empty());
  EXPECT_EQ(b.stats.wire_bytes_tx, 0u);
  EXPECT_EQ(b.stats.harvest_runs, 0u);
}

TEST(DistReplayTest, TwoShardsReproduceSyscallBug) {
  constexpr const char* kReadBug = R"(
    int main() {
      char buf[64];
      int n = read(0, buf, 60);
      if (n == 13) {
        if (buf[0] == 'Z') { crash(2); }
      }
      return 0;
    }
  )";
  auto pipeline = MustBuild(kReadBug);
  const InstrumentationPlan plan =
      pipeline->MakePlan(InstrumentMethod::kAllBranches, nullptr, nullptr);
  InputSpec spec;
  spec.argv = {"prog"};
  spec.world.listen_fd = -1;
  spec.world.stdin_stream = 0;
  StreamShape stream;
  stream.name = "stdin";
  const std::string data = "Zsecretsecret";  // 13 bytes.
  stream.bytes.assign(data.begin(), data.end());
  stream.length = 13;
  spec.world.streams.push_back(stream);

  const auto user = pipeline->RecordUserRun(spec, plan, {});
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig config;
  config.num_shards = 2;
  config.num_workers = 1;  // 2 processes x 1 thread.
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config);
  ASSERT_TRUE(replay.reproduced);
}

}  // namespace
}  // namespace retrace
