// End-to-end tests for the distributed (multi-process) replay scheduler:
// 2-shard reproduction of the miniature crash scenarios over both
// transports (fork socketpairs and TCP loopback), in-process parity for
// num_shards <= 1, shard-aware stats aggregation, and the frontier
// re-balance protocol (a deliberately starved shard must end with
// pendings_imported > 0).
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <chrono>
#include <numeric>
#include <thread>

#include "src/core/pipeline.h"
#include "src/dist/shard.h"
#include "src/dist/wire.h"
#include "tests/testutil.h"

namespace retrace {
namespace {

// Crashes iff argv[1] starts with "k9" and argv[2][0] > '5' (the
// miniature scenario of replay_parallel_test.cc).
constexpr const char* kGuardedCrash = R"(
int main(int argc, char **argv) {
  if (argc < 3) { return 1; }
  if (argv[1][0] == 'k') {
    if (argv[1][1] == '9') {
      if (argv[2][0] > '5') {
        crash(13);
      }
    }
  }
  return 0;
}
)";

// Wider search space: enough frontier for the scout to actually ship
// pending sets to both shards.
constexpr const char* kDeepGuardedCrash = R"(
int main(int argc, char **argv) {
  if (argc < 3) { return 1; }
  int hits = 0;
  if (argv[1][0] == 'a') { hits = hits + 1; }
  if (argv[1][1] == 'b') { hits = hits + 1; }
  if (argv[1][2] == 'c') { hits = hits + 1; }
  if (argv[2][0] > 'm') { hits = hits + 1; }
  if (hits == 4) { crash(7); }
  return 0;
}
)";

std::unique_ptr<Pipeline> MustBuild(std::string_view app) {
  auto r = Pipeline::FromSources(app, {});
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().ToString());
  return r.take();
}

InputSpec GuardedCrashInput() {
  InputSpec spec;
  spec.argv = {"prog", "k9", "7"};
  spec.world.listen_fd = -1;
  return spec;
}

InputSpec DeepGuardedCrashInput() {
  InputSpec spec;
  spec.argv = {"prog", "abc", "z"};
  spec.world.listen_fd = -1;
  return spec;
}

TEST(DistReplayTest, TwoShardsReproduceGuardedCrash) {
  auto pipeline = MustBuild(kGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(GuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig config;
  config.num_shards = 2;
  config.num_workers = 2;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
  ASSERT_TRUE(replay.reproduced);
  ASSERT_GE(replay.witness_argv.size(), 3u);
  EXPECT_EQ(replay.witness_argv[1][0], 'k');
  EXPECT_EQ(replay.witness_argv[1][1], '9');
  EXPECT_GT(replay.witness_argv[2][0], '5');
  EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));
}

TEST(DistReplayTest, TwoShardsReproduceDeepCrashAndAggregateStats) {
  auto pipeline = MustBuild(kDeepGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(DeepGuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig config;
  config.num_shards = 2;
  config.num_workers = 2;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
  ASSERT_TRUE(replay.reproduced);
  EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));

  // Shard-aware aggregation: one per_shard entry per process; aggregate
  // runs = scout runs + every shard worker's runs.
  const ReplayStats& s = replay.stats;
  ASSERT_EQ(s.per_shard.size(), 2u);
  EXPECT_EQ(s.per_shard[0].shard_id, 0u);
  EXPECT_EQ(s.per_shard[1].shard_id, 1u);
  const u64 worker_runs = std::accumulate(
      s.per_worker.begin(), s.per_worker.end(), u64{0},
      [](u64 acc, const ReplayWorkerStats& w) { return acc + w.runs; });
  EXPECT_EQ(s.runs, s.harvest_runs + worker_runs);
  const u64 shard_runs =
      std::accumulate(s.per_shard.begin(), s.per_shard.end(), u64{0},
                      [](u64 acc, const ReplayShardStats& sh) { return acc + sh.runs; });
  EXPECT_EQ(worker_runs, shard_runs);
  // The wire was actually used: handshake + results at minimum.
  EXPECT_GT(s.wire_bytes_tx, 0u);
  EXPECT_GT(s.wire_bytes_rx, 0u);
  // Reproduced and the scout did not finish => some shard did. (Several
  // shards may genuinely reproduce before the stop lands; each reports
  // its own truth.)
  int winners = 0;
  for (const ReplayShardStats& sh : s.per_shard) {
    winners += sh.reproduced ? 1 : 0;
  }
  EXPECT_GE(winners, 1);
}

// Corpus-seeded distributed replay: the fleet partitions the corpus by
// shard id and every seeded run is counted. Seeding each shard with a
// known witness makes the reproduction come from a corpus run (the
// scout's bounded random search cannot find the deep crash first), so
// corpus_runs > 0 is deterministic.
TEST(DistReplayTest, TwoShardsReproduceFromCorpusSeeds) {
  auto pipeline = MustBuild(kDeepGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(DeepGuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  // Obtain a witness in-process first, then hand it to both shards as
  // corpus seeds (index % 2 partitions one to each).
  ReplayConfig warm;
  warm.num_workers = 4;
  const ReplayResult baseline = pipeline->Reproduce(user.report, plan, warm).take();
  ASSERT_TRUE(baseline.reproduced);

  ReplayConfig config;
  config.num_shards = 2;
  config.num_workers = 1;
  config.corpus_seeds = {baseline.witness_cells, baseline.witness_cells};
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
  ASSERT_TRUE(replay.reproduced);
  EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));
  if (replay.stats.harvest_runs < replay.stats.runs) {
    // Shards actually ran (the scout did not finish on its own): the
    // winning run was a corpus-seeded one and it was counted.
    EXPECT_GE(replay.stats.corpus_runs, 1u);
  }
}

TEST(DistReplayTest, ScoutShortCircuitsWithoutForking) {
  // With a wide-open run budget and the trivial scenario, the scout's
  // bounded sequential search reproduces the crash before any shard is
  // forked: no wire traffic, no per-shard entries.
  auto pipeline = MustBuild(kGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(GuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig config;
  config.num_shards = 4;  // Scout cap = max(4, 2*shards) = 8 runs.
  config.seed = 11;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
  if (replay.stats.per_shard.empty()) {
    // Scout finished the job: the distributed layer added zero overhead.
    EXPECT_EQ(replay.stats.wire_bytes_tx, 0u);
    EXPECT_EQ(replay.stats.wire_bytes_rx, 0u);
    EXPECT_EQ(replay.stats.runs, replay.stats.harvest_runs);
  }
  ASSERT_TRUE(replay.reproduced);
  EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));
}

TEST(DistReplayTest, SingleShardConfigStaysInProcess) {
  auto pipeline = MustBuild(kGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(GuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig base;
  base.seed = 11;
  const ReplayResult a = pipeline->Reproduce(user.report, plan, base).take();

  ReplayConfig explicit_one = base;
  explicit_one.num_shards = 1;
  const ReplayResult b = pipeline->Reproduce(user.report, plan, explicit_one).take();

  // num_shards == 1 must be byte-for-byte the in-process engine: same
  // witness, same counters, no distributed bookkeeping.
  ASSERT_TRUE(a.reproduced);
  ASSERT_TRUE(b.reproduced);
  EXPECT_EQ(a.witness_cells, b.witness_cells);
  EXPECT_EQ(a.witness_argv, b.witness_argv);
  EXPECT_EQ(a.stats.runs, b.stats.runs);
  EXPECT_EQ(a.stats.solver_calls, b.stats.solver_calls);
  EXPECT_TRUE(b.stats.per_shard.empty());
  EXPECT_EQ(b.stats.wire_bytes_tx, 0u);
  EXPECT_EQ(b.stats.harvest_runs, 0u);
}

// ----- TCP loopback transport -----
//
// transport = kTcp with no shard_endpoints self-spawns local children
// that connect back over 127.0.0.1 and handshake kJoin/kJob — including
// the full program-source ship and module rebuild a remote
// retrace_shardd would do. Only the host boundary is missing.

TEST(DistReplayTest, TcpTwoShardsReproduceGuardedCrash) {
  auto pipeline = MustBuild(kGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(GuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig config;
  config.num_shards = 2;
  config.num_workers = 2;
  config.transport = ReplayTransport::kTcp;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
  ASSERT_TRUE(replay.reproduced);
  ASSERT_GE(replay.witness_argv.size(), 3u);
  EXPECT_EQ(replay.witness_argv[1][0], 'k');
  EXPECT_EQ(replay.witness_argv[1][1], '9');
  EXPECT_GT(replay.witness_argv[2][0], '5');
  EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));
}

TEST(DistReplayTest, TcpTwoShardsReproduceDeepCrashWithWireStats) {
  auto pipeline = MustBuild(kDeepGuardedCrash);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  const auto user = pipeline->RecordUserRun(DeepGuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig config;
  config.num_shards = 2;
  config.num_workers = 2;
  config.transport = ReplayTransport::kTcp;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
  ASSERT_TRUE(replay.reproduced);
  EXPECT_TRUE(pipeline->VerifyWitness(user.report, replay.witness_cells));
  // The job ship (sources + plan + report) makes the TCP handshake far
  // heavier than the fork transport's: the byte counters must see it.
  const ReplayStats& s = replay.stats;
  ASSERT_EQ(s.per_shard.size(), 2u);
  EXPECT_GT(s.wire_bytes_tx, 0u);
  EXPECT_GT(s.wire_bytes_rx, 0u);
  const u64 worker_runs = std::accumulate(
      s.per_worker.begin(), s.per_worker.end(), u64{0},
      [](u64 acc, const ReplayWorkerStats& w) { return acc + w.runs; });
  EXPECT_EQ(s.runs, s.harvest_runs + worker_runs);
}

TEST(DistReplayTest, TcpTwoShardsReproduceSyscallBug) {
  constexpr const char* kReadBug = R"(
    int main() {
      char buf[64];
      int n = read(0, buf, 60);
      if (n == 13) {
        if (buf[0] == 'Z') { crash(2); }
      }
      return 0;
    }
  )";
  auto pipeline = MustBuild(kReadBug);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  InputSpec spec;
  spec.argv = {"prog"};
  spec.world.listen_fd = -1;
  spec.world.stdin_stream = 0;
  StreamShape stream;
  stream.name = "stdin";
  const std::string data = "Zsecretsecret";  // 13 bytes.
  stream.bytes.assign(data.begin(), data.end());
  stream.length = 13;
  spec.world.streams.push_back(stream);

  const auto user = pipeline->RecordUserRun(spec, plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig config;
  config.num_shards = 2;
  config.num_workers = 1;  // 2 processes x 1 thread, over TCP loopback.
  config.transport = ReplayTransport::kTcp;
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
  ASSERT_TRUE(replay.reproduced);
}

// ----- Frontier re-balancing -----

// Drives one shard directly over a socketpair, with the test acting as
// the coordinator: the shard is seeded with an empty frontier and a
// 1-step run budget, so every local run aborts without producing
// pendings — guaranteed starvation. The shard must send kWorkRequest,
// import the pendings the "coordinator" exports back, and report
// pendings_imported > 0 in its final stats.
TEST(DistReplayTest, StarvedShardImportsReBalancedWork) {
  auto pipeline = MustBuild(kDeepGuardedCrash);
  // Nothing instrumented: every symbolic branch is a case-1 flip, so one
  // scouted run yields several pendings to donate (an all-branches log
  // leaves only forced-direction pendings — a deliberately narrow
  // frontier).
  InstrumentationPlan plan;
  plan.method = InstrumentMethod::kDynamic;
  plan.branches = DenseBitset(pipeline->module().branches.size());
  const auto user = pipeline->RecordUserRun(DeepGuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  // Real pendings to donate: harvest a small frontier the same way the
  // coordinator's scout does (one run, so nothing is consumed yet).
  ReplayConfig harvest_cfg;
  ReplayEngine scout(pipeline->module(), plan, user.report, &pipeline->arena());
  ReplayEngine::HarvestOutput harvest = scout.HarvestFrontier(harvest_cfg, /*max_runs=*/1,
                                                              /*target_frontier=*/100);
  ASSERT_FALSE(harvest.frontier.empty());

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ReplayConfig shard_cfg;
  shard_cfg.num_workers = 2;
  shard_cfg.max_steps_per_run = 1;  // Every run aborts: nothing pends.
  shard_cfg.gossip_interval_ms = 5;
  bool shard_ok = false;
  std::thread shard([&] {
    shard_ok = RunShard(pipeline->module(), plan, user.report, shard_cfg, /*shard_id=*/0,
                        fds[1]);
  });

  WireChannel chan(fds[0]);
  {
    WireWriter hello;
    EncodeHello(WireHello{/*shard_id=*/0, /*num_shards=*/2, /*pending_count=*/0}, &hello);
    ASSERT_TRUE(chan.Send(WireMsg::kHello, hello.buf()));
    ASSERT_TRUE(chan.Send(WireMsg::kStart, {}));
  }

  const size_t donated = std::min<size_t>(4, harvest.frontier.size());
  bool donated_once = false;
  u64 requests_seen = 0;
  bool have_result = false;
  WireShardResult result;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!have_result && std::chrono::steady_clock::now() < deadline) {
    std::vector<WireFrame> frames;
    const WireChannel::RecvStatus status = chan.Poll(50, &frames);
    ASSERT_NE(status, WireChannel::RecvStatus::kCorrupt);
    ASSERT_NE(status, WireChannel::RecvStatus::kVersionMismatch);
    for (const WireFrame& frame : frames) {
      if (frame.type == WireMsg::kWorkRequest) {
        WireReader r(frame.payload.data(), frame.payload.size());
        WireWorkRequest request;
        ASSERT_TRUE(DecodeWorkRequest(&r, &request));
        EXPECT_EQ(request.shard_id, 0u);
        ++requests_seen;
        WirePendingExport batch;
        batch.requester_shard_id = request.shard_id;
        batch.seq = request.seq;
        if (!donated_once) {
          donated_once = true;
          for (size_t i = 0; i < donated; ++i) {
            batch.pendings.push_back(harvest.frontier[i]);
          }
        }
        WireWriter w;
        EncodePendingExport(batch, &w);
        ASSERT_TRUE(chan.Send(WireMsg::kPendingExport, w.buf()));
      } else if (frame.type == WireMsg::kResult) {
        WireReader r(frame.payload.data(), frame.payload.size());
        ASSERT_TRUE(DecodeShardResult(&r, &result));
        have_result = true;
      }
      // Verdict gossip is ignored: this coordinator has no peers.
    }
    if (status == WireChannel::RecvStatus::kClosed && !have_result) {
      break;
    }
  }
  shard.join();

  ASSERT_TRUE(have_result) << "shard never reported a result";
  EXPECT_TRUE(shard_ok);
  EXPECT_GE(requests_seen, 1u);
  // The starved shard imported the donated work and counted it.
  EXPECT_GT(result.result.stats.pendings_imported, 0u);
  EXPECT_LE(result.result.stats.pendings_imported, donated);
  EXPECT_GE(result.result.stats.rebalance_rounds, 1u);
}

// A loaded shard must answer a relayed kWorkRequest by carving off its
// deepest frontier entries (donor side of the protocol), and the carve
// shows up in pendings_exported. The busy loop keeps each run long
// enough that the frontier cannot drain between the request and the
// pump's answer; the requester retries on empty answers regardless, the
// way a real starved shard does.
TEST(DistReplayTest, LoadedShardExportsWorkOnRequest) {
  // The busy loop makes every run take real wall time, so the frontier
  // cannot drain between the relayed request and the pump's answer.
  constexpr const char* kBusyDeepGuardedCrash = R"(
int main(int argc, char **argv) {
  if (argc < 3) { return 1; }
  int i = 0;
  while (i < 500000) { i = i + 1; }
  int hits = 0;
  if (argv[1][0] == 'a') { hits = hits + 1; }
  if (argv[1][1] == 'b') { hits = hits + 1; }
  if (argv[1][2] == 'c') { hits = hits + 1; }
  if (argv[2][0] > 'm') { hits = hits + 1; }
  if (hits == 4) { crash(7); }
  return 0;
}
)";
  auto pipeline = MustBuild(kBusyDeepGuardedCrash);
  InstrumentationPlan plan;  // Nothing instrumented: wide case-1 frontier.
  plan.method = InstrumentMethod::kDynamic;
  plan.branches = DenseBitset(pipeline->module().branches.size());
  const auto user = pipeline->RecordUserRun(DeepGuardedCrashInput(), plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig harvest_cfg;
  ReplayEngine scout(pipeline->module(), plan, user.report, &pipeline->arena());
  ReplayEngine::HarvestOutput harvest = scout.HarvestFrontier(harvest_cfg, /*max_runs=*/1,
                                                              /*target_frontier=*/100);
  ASSERT_FALSE(harvest.frontier.empty());
  // Tile the harvest into a deep seed list: plenty resident in the
  // queue for the donor to carve while its one worker is mid-run.
  std::vector<PortablePending> seeds;
  while (seeds.size() < 20) {
    seeds.push_back(harvest.frontier[seeds.size() % harvest.frontier.size()]);
  }

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ReplayConfig shard_cfg;
  shard_cfg.num_workers = 1;
  shard_cfg.solve_batch = 2;  // Leave most of the frontier in the queue.
  // Bound the shard's life, but generously: the donor must still be
  // mid-search when the work request arrives ~50ms in, and the bytecode
  // engine finishes runs several times faster than the tree walker.
  shard_cfg.max_runs = 40;
  shard_cfg.gossip_interval_ms = 5;
  bool shard_ok = false;
  std::thread shard([&] {
    shard_ok = RunShard(pipeline->module(), plan, user.report, shard_cfg, /*shard_id=*/1,
                        fds[1]);
  });
  // Joins on every exit path, including a fatal ASSERT mid-test. Declared
  // before `chan` so the channel's destructor closes the socket first —
  // the shard sees the close and returns, so the join cannot hang.
  struct Joiner {
    std::thread& t;
    ~Joiner() {
      if (t.joinable()) {
        t.join();
      }
    }
  } joiner{shard};

  WireChannel chan(fds[0]);
  // Seed the shard, then play the starving peer via the coordinator
  // relay.
  for (const PortablePending& pending : seeds) {
    WireWriter w;
    EncodePending(pending, &w);
    ASSERT_TRUE(chan.Send(WireMsg::kPending, w.buf()));
  }
  {
    WireWriter hello;
    EncodeHello(WireHello{/*shard_id=*/1, /*num_shards=*/2, static_cast<u32>(seeds.size())},
                &hello);
    ASSERT_TRUE(chan.Send(WireMsg::kHello, hello.buf()));
    ASSERT_TRUE(chan.Send(WireMsg::kStart, {}));
  }
  auto send_request = [&chan] {
    WireWriter w;
    EncodeWorkRequest(WireWorkRequest{/*shard_id=*/0, /*want=*/4, /*frontier_size=*/0}, &w);
    // The donor is a live search and may finish (crash reproduced or
    // max_runs) at any moment; a send that loses that race just means
    // the kResult frame is already queued on our side.
    (void)chan.Send(WireMsg::kWorkRequest, w.buf());
  };
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // Let the search attach.
  send_request();

  u64 pendings_received = 0;
  bool have_result = false;
  WireShardResult result;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!have_result && std::chrono::steady_clock::now() < deadline) {
    std::vector<WireFrame> frames;
    const WireChannel::RecvStatus status = chan.Poll(50, &frames);
    ASSERT_NE(status, WireChannel::RecvStatus::kCorrupt);
    ASSERT_NE(status, WireChannel::RecvStatus::kVersionMismatch);
    for (const WireFrame& frame : frames) {
      if (frame.type == WireMsg::kPendingExport) {
        WireReader r(frame.payload.data(), frame.payload.size());
        WirePendingExport batch;
        ASSERT_TRUE(DecodePendingExport(&r, &batch));
        pendings_received += batch.pendings.size();
        if (batch.pendings.empty() && pendings_received == 0) {
          send_request();  // Donor had nothing to spare yet: ask again.
        }
      } else if (frame.type == WireMsg::kWorkRequest) {
        // The shard itself may starve later and ask back: always answer
        // (empty, echoing the request), or it waits out its response
        // timeout before exiting.
        WireReader r(frame.payload.data(), frame.payload.size());
        WireWorkRequest request;
        ASSERT_TRUE(DecodeWorkRequest(&r, &request));
        WirePendingExport empty;
        empty.requester_shard_id = request.shard_id;
        empty.seq = request.seq;
        WireWriter w;
        EncodePendingExport(empty, &w);
        // Tolerated for the same reason as send_request: the shard may
        // close its end between asking and our answer.
        (void)chan.Send(WireMsg::kPendingExport, w.buf());
      } else if (frame.type == WireMsg::kResult) {
        WireReader r(frame.payload.data(), frame.payload.size());
        ASSERT_TRUE(DecodeShardResult(&r, &result));
        have_result = true;
      }
    }
    if (status == WireChannel::RecvStatus::kClosed && !have_result) {
      break;
    }
  }
  shard.join();

  ASSERT_TRUE(have_result) << "shard never reported a result";
  EXPECT_TRUE(shard_ok);
  EXPECT_GT(pendings_received, 0u);
  EXPECT_EQ(result.result.stats.pendings_exported, pendings_received);
}

TEST(DistReplayTest, TwoShardsReproduceSyscallBug) {
  constexpr const char* kReadBug = R"(
    int main() {
      char buf[64];
      int n = read(0, buf, 60);
      if (n == 13) {
        if (buf[0] == 'Z') { crash(2); }
      }
      return 0;
    }
  )";
  auto pipeline = MustBuild(kReadBug);
  const InstrumentationPlan plan =
      pipeline->MakePlan(PlanInputs::AllBranches());
  InputSpec spec;
  spec.argv = {"prog"};
  spec.world.listen_fd = -1;
  spec.world.stdin_stream = 0;
  StreamShape stream;
  stream.name = "stdin";
  const std::string data = "Zsecretsecret";  // 13 bytes.
  stream.bytes.assign(data.begin(), data.end());
  stream.length = 13;
  spec.world.streams.push_back(stream);

  const auto user = pipeline->RecordUserRun(spec, plan, {}).take();
  ASSERT_TRUE(user.result.Crashed());

  ReplayConfig config;
  config.num_shards = 2;
  config.num_workers = 1;  // 2 processes x 1 thread.
  const ReplayResult replay = pipeline->Reproduce(user.report, plan, config).take();
  ASSERT_TRUE(replay.reproduced);
}

}  // namespace
}  // namespace retrace
