#include <gtest/gtest.h>

#include "src/support/bitvec.h"
#include "src/support/budget.h"
#include "src/support/dense_bitset.h"
#include "src/support/rng.h"

namespace retrace {
namespace {

TEST(BitVecTest, PushAndGet) {
  BitVec bits;
  EXPECT_TRUE(bits.empty());
  bits.PushBit(true);
  bits.PushBit(false);
  bits.PushBit(true);
  EXPECT_EQ(bits.size(), 3u);
  EXPECT_TRUE(bits.GetBit(0));
  EXPECT_FALSE(bits.GetBit(1));
  EXPECT_TRUE(bits.GetBit(2));
}

TEST(BitVecTest, ByteSizeRoundsUp) {
  BitVec bits;
  for (int i = 0; i < 9; ++i) {
    bits.PushBit(i % 2 == 0);
  }
  EXPECT_EQ(bits.ByteSize(), 2u);
}

TEST(BitVecTest, SerializeRoundTrip) {
  BitVec bits;
  for (int i = 0; i < 100; ++i) {
    bits.PushBit((i * 7) % 3 == 0);
  }
  const BitVec copy = BitVec::Deserialize(bits.Serialize(), bits.size());
  EXPECT_EQ(bits, copy);
}

TEST(BitVecTest, CrossesByteBoundaries) {
  BitVec bits;
  for (int i = 0; i < 64; ++i) {
    bits.PushBit(i == 13 || i == 31 || i == 63);
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(bits.GetBit(i), i == 13 || i == 31 || i == 63) << i;
  }
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, RangesRespected) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const i64 v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const u8 c = rng.NextPrintable();
    EXPECT_GE(c, ' ');
    EXPECT_LE(c, '~');
  }
}

TEST(BudgetTest, StepLimit) {
  Budget budget = Budget::Steps(10);
  EXPECT_FALSE(budget.Exhausted());
  EXPECT_TRUE(budget.Consume(9));
  EXPECT_FALSE(budget.Consume(1));
  EXPECT_TRUE(budget.Exhausted());
}

TEST(BudgetTest, UnlimitedByDefault) {
  Budget budget;
  EXPECT_TRUE(budget.Consume(1'000'000'000));
  EXPECT_FALSE(budget.Exhausted());
}

TEST(DenseBitsetTest, SetTestCount) {
  DenseBitset bits(130);
  bits.Set(0);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_EQ(bits.Count(), 3u);
  bits.Set(64, false);
  EXPECT_EQ(bits.Count(), 2u);
}

TEST(DenseBitsetTest, UnionWith) {
  DenseBitset a(70);
  DenseBitset b(70);
  a.Set(3);
  b.Set(69);
  EXPECT_TRUE(a.UnionWith(b));
  EXPECT_TRUE(a.Test(3));
  EXPECT_TRUE(a.Test(69));
  EXPECT_FALSE(a.UnionWith(b));  // No change the second time.
}

}  // namespace
}  // namespace retrace
