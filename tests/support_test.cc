#include <gtest/gtest.h>

#include "src/support/bitvec.h"
#include "src/support/budget.h"
#include "src/support/dense_bitset.h"
#include "src/support/env.h"
#include "src/support/rng.h"

namespace retrace {
namespace {

TEST(BitVecTest, PushAndGet) {
  BitVec bits;
  EXPECT_TRUE(bits.empty());
  bits.PushBit(true);
  bits.PushBit(false);
  bits.PushBit(true);
  EXPECT_EQ(bits.size(), 3u);
  EXPECT_TRUE(bits.GetBit(0));
  EXPECT_FALSE(bits.GetBit(1));
  EXPECT_TRUE(bits.GetBit(2));
}

TEST(BitVecTest, ByteSizeRoundsUp) {
  BitVec bits;
  for (int i = 0; i < 9; ++i) {
    bits.PushBit(i % 2 == 0);
  }
  EXPECT_EQ(bits.ByteSize(), 2u);
}

TEST(BitVecTest, SerializeRoundTrip) {
  BitVec bits;
  for (int i = 0; i < 100; ++i) {
    bits.PushBit((i * 7) % 3 == 0);
  }
  const BitVec copy = BitVec::Deserialize(bits.Serialize(), bits.size());
  EXPECT_EQ(bits, copy);
}

TEST(BitVecTest, CrossesByteBoundaries) {
  BitVec bits;
  for (int i = 0; i < 64; ++i) {
    bits.PushBit(i == 13 || i == 31 || i == 63);
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(bits.GetBit(i), i == 13 || i == 31 || i == 63) << i;
  }
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, RangesRespected) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const i64 v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const u8 c = rng.NextPrintable();
    EXPECT_GE(c, ' ');
    EXPECT_LE(c, '~');
  }
}

TEST(BudgetTest, StepLimit) {
  Budget budget = Budget::Steps(10);
  EXPECT_FALSE(budget.Exhausted());
  EXPECT_TRUE(budget.Consume(9));
  EXPECT_FALSE(budget.Consume(1));
  EXPECT_TRUE(budget.Exhausted());
}

TEST(BudgetTest, UnlimitedByDefault) {
  Budget budget;
  EXPECT_TRUE(budget.Consume(1'000'000'000));
  EXPECT_FALSE(budget.Exhausted());
}

TEST(DenseBitsetTest, SetTestCount) {
  DenseBitset bits(130);
  bits.Set(0);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_EQ(bits.Count(), 3u);
  bits.Set(64, false);
  EXPECT_EQ(bits.Count(), 2u);
}

TEST(DenseBitsetTest, UnionWith) {
  DenseBitset a(70);
  DenseBitset b(70);
  a.Set(3);
  b.Set(69);
  EXPECT_TRUE(a.UnionWith(b));
  EXPECT_TRUE(a.Test(3));
  EXPECT_TRUE(a.Test(69));
  EXPECT_FALSE(a.UnionWith(b));  // No change the second time.
}

// ----- Strict environment-knob parsing (src/support/env.h) -----
//
// The historical failure mode: RETRACE_SOLVER_CACHE=true atoi'd to 0 and
// silently *disabled* the cache the user asked for. The strict parsers
// must accept exactly the documented spellings and reject everything
// else so the EnvKnob* wrappers can fail loudly.

TEST(EnvKnobTest, ParsesWholeIntegers) {
  i64 v = 0;
  EXPECT_TRUE(ParseKnobI64("0", &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ParseKnobI64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseKnobI64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_TRUE(ParseKnobI64("9223372036854775807", &v));
  EXPECT_EQ(v, 9223372036854775807ll);
}

TEST(EnvKnobTest, RejectsHostileIntegers) {
  i64 v = 99;
  EXPECT_FALSE(ParseKnobI64(nullptr, &v));
  EXPECT_FALSE(ParseKnobI64("", &v));
  EXPECT_FALSE(ParseKnobI64("true", &v));   // The RETRACE_SOLVER_CACHE=true bug shape.
  EXPECT_FALSE(ParseKnobI64("12abc", &v));  // Trailing garbage.
  EXPECT_FALSE(ParseKnobI64("4 ", &v));     // Trailing space counts as garbage.
  EXPECT_FALSE(ParseKnobI64("0x10", &v));   // No hex — decimal only.
  EXPECT_FALSE(ParseKnobI64("99999999999999999999", &v));  // Overflow.
  EXPECT_EQ(v, 99);  // Failed parses never write through.
}

TEST(EnvKnobTest, ParsesBooleanSpellings) {
  bool v = false;
  for (const char* text : {"1", "true", "TRUE", "on", "On", "yes"}) {
    v = false;
    EXPECT_TRUE(ParseKnobBool(text, &v)) << text;
    EXPECT_TRUE(v) << text;
  }
  for (const char* text : {"0", "false", "False", "off", "OFF", "no"}) {
    v = true;
    EXPECT_TRUE(ParseKnobBool(text, &v)) << text;
    EXPECT_FALSE(v) << text;
  }
}

TEST(EnvKnobTest, RejectsHostileBooleans) {
  bool v = true;
  EXPECT_FALSE(ParseKnobBool(nullptr, &v));
  EXPECT_FALSE(ParseKnobBool("", &v));
  EXPECT_FALSE(ParseKnobBool("2", &v));     // Not a documented spelling.
  EXPECT_FALSE(ParseKnobBool("-1", &v));
  EXPECT_FALSE(ParseKnobBool("enable", &v));
  EXPECT_FALSE(ParseKnobBool("truex", &v));
  EXPECT_TRUE(v);  // Failed parses never write through.
}

TEST(EnvKnobTest, EnvWrappersUseDefaultsWhenUnset) {
  ::unsetenv("RETRACE_TEST_KNOB");
  EXPECT_EQ(EnvKnobI64("RETRACE_TEST_KNOB", 17, 1, 100), 17);
  EXPECT_TRUE(EnvKnobBool("RETRACE_TEST_KNOB", true));
  EXPECT_FALSE(EnvKnobBool("RETRACE_TEST_KNOB", false));
}

TEST(EnvKnobTest, EnvWrappersAcceptValidValues) {
  ::setenv("RETRACE_TEST_KNOB", "33", 1);
  EXPECT_EQ(EnvKnobI64("RETRACE_TEST_KNOB", 17, 1, 100), 33);
  ::setenv("RETRACE_TEST_KNOB", "on", 1);
  EXPECT_TRUE(EnvKnobBool("RETRACE_TEST_KNOB", false));
  ::setenv("RETRACE_TEST_KNOB", "false", 1);
  EXPECT_FALSE(EnvKnobBool("RETRACE_TEST_KNOB", true));
  ::unsetenv("RETRACE_TEST_KNOB");
}

// The loud-failure contract: garbage and out-of-range values exit(2)
// with a message naming the knob, instead of silently defaulting.
TEST(EnvKnobDeathTest, GarbageIntegerDiesLoudly) {
  ::setenv("RETRACE_TEST_KNOB", "fast", 1);
  EXPECT_EXIT(EnvKnobI64("RETRACE_TEST_KNOB", 1, 1, 100), testing::ExitedWithCode(2),
              "RETRACE_TEST_KNOB");
  ::setenv("RETRACE_TEST_KNOB", "101", 1);  // Out of range.
  EXPECT_EXIT(EnvKnobI64("RETRACE_TEST_KNOB", 1, 1, 100), testing::ExitedWithCode(2),
              "RETRACE_TEST_KNOB");
  ::setenv("RETRACE_TEST_KNOB", "-3", 1);   // Negative where min is 1.
  EXPECT_EXIT(EnvKnobI64("RETRACE_TEST_KNOB", 1, 1, 100), testing::ExitedWithCode(2),
              "RETRACE_TEST_KNOB");
  ::unsetenv("RETRACE_TEST_KNOB");
}

TEST(EnvKnobDeathTest, GarbageBooleanDiesLoudly) {
  ::setenv("RETRACE_TEST_KNOB", "maybe", 1);
  EXPECT_EXIT(EnvKnobBool("RETRACE_TEST_KNOB", true), testing::ExitedWithCode(2),
              "RETRACE_TEST_KNOB");
  ::unsetenv("RETRACE_TEST_KNOB");
}

}  // namespace
}  // namespace retrace
